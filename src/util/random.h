// Fast PRNGs and TPC-C/Zipfian helpers. Engine and workload code must not use
// glibc rand() (not preemption-safe and serializes on an internal lock).
#ifndef PREEMPTDB_UTIL_RANDOM_H_
#define PREEMPTDB_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "util/macros.h"

namespace preemptdb {

// xorshift128+ — fast, decent quality, 16 bytes of state.
class FastRandom {
 public:
  explicit FastRandom(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    s0_ = SplitMix(seed);
    s1_ = SplitMix(s0_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t UniformU64(uint64_t lo, uint64_t hi) {
    PDB_DCHECK(hi >= lo);
    return lo + Next() % (hi - lo + 1);
  }

  int64_t Uniform(int64_t lo, int64_t hi) {
    return static_cast<int64_t>(
        UniformU64(0, static_cast<uint64_t>(hi - lo))) + lo;
  }

  double NextDouble() {  // [0, 1)
    return (Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // TPC-C NURand (clause 2.1.6). C is fixed per run which is spec-compliant
  // for a single load.
  int64_t NURand(int64_t a, int64_t x, int64_t y) {
    static constexpr int64_t kC = 42;
    return (((Uniform(0, a) | Uniform(x, y)) + kC) % (y - x + 1)) + x;
  }

  // Random alphanumeric string of length in [lo, hi].
  std::string AString(int lo, int hi) {
    static constexpr char kChars[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    int len = static_cast<int>(Uniform(lo, hi));
    std::string s(len, 'x');
    for (int i = 0; i < len; ++i) s[i] = kChars[Next() % 62];
    return s;
  }

  std::string NString(int lo, int hi) {
    int len = static_cast<int>(Uniform(lo, hi));
    std::string s(len, '0');
    for (int i = 0; i < len; ++i) s[i] = static_cast<char>('0' + Next() % 10);
    return s;
  }

 private:
  static uint64_t SplitMix(uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s0_, s1_;
};

// Zipfian generator over [0, n) (Gray et al., SIGMOD '94 rejection-free
// formulation as popularized by YCSB).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    PDB_CHECK(n > 0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  FastRandom rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace preemptdb

#endif  // PREEMPTDB_UTIL_RANDOM_H_
