// Common macros and small helpers shared across PreemptDB.
#ifndef PREEMPTDB_UTIL_MACROS_H_
#define PREEMPTDB_UTIL_MACROS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#define PDB_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

#define PDB_LIKELY(x) __builtin_expect(!!(x), 1)
#define PDB_UNLIKELY(x) __builtin_expect(!!(x), 0)

// Hardware destructive interference size; 64 bytes on every x86-64 part we
// target. Used to pad hot shared structures against false sharing.
inline constexpr std::size_t kCacheLineSize = 64;

#define PDB_CACHELINE_ALIGNED alignas(kCacheLineSize)

// Always-fatal assertion: used for invariants that must hold even in release
// builds (the engine relies on them for memory safety).
#define PDB_CHECK(cond)                                                     \
  do {                                                                      \
    if (PDB_UNLIKELY(!(cond))) {                                            \
      ::std::fprintf(stderr, "PDB_CHECK failed: %s at %s:%d\n", #cond,      \
                     __FILE__, __LINE__);                                   \
      ::std::abort();                                                       \
    }                                                                       \
  } while (0)

#define PDB_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (PDB_UNLIKELY(!(cond))) {                                            \
      ::std::fprintf(stderr, "PDB_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                     msg, __FILE__, __LINE__);                              \
      ::std::abort();                                                       \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define PDB_DCHECK(cond) PDB_CHECK(cond)
#else
#define PDB_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

namespace preemptdb {

// CPU relax hint for spin loops.
inline void CpuPause() { __builtin_ia32_pause(); }

}  // namespace preemptdb

#endif  // PREEMPTDB_UTIL_MACROS_H_
