#include "util/histogram.h"

#include <cmath>
#include <cstdio>

namespace preemptdb {

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int LatencyHistogram::BucketFor(uint64_t nanos) {
  if (nanos < kSubBuckets) return static_cast<int>(nanos);
  // Value with most-significant bit e lands in octave [2^e, 2^(e+1)),
  // subdivided into kSubBuckets buckets of width 2^(e - kSubBucketBits).
  int e = 63 - __builtin_clzll(nanos);
  int shift = e - kSubBucketBits;
  int sub = static_cast<int>(nanos >> shift) & (kSubBuckets - 1);
  int idx = (e - kSubBucketBits + 1) * kSubBuckets + sub;
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

uint64_t LatencyHistogram::BucketMidpoint(int bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  int e = bucket / kSubBuckets + kSubBucketBits - 1;
  int sub = bucket % kSubBuckets;
  int shift = e - kSubBucketBits;
  uint64_t lo = (static_cast<uint64_t>(kSubBuckets) + sub) << shift;
  return lo + (1ull << shift) / 2;
}

void LatencyHistogram::RecordNanos(uint64_t nanos) {
  buckets_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t prev = min_.load(std::memory_order_relaxed);
  while (nanos < prev &&
         !min_.compare_exchange_weak(prev, nanos, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (nanos > prev &&
         !max_.compare_exchange_weak(prev, nanos, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::PercentileNanos(double p) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * total);
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) return BucketMidpoint(i);
  }
  return MaxNanos();
}

double LatencyHistogram::MeanNanos() const {
  uint64_t n = Count();
  if (n == 0) return 0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double LatencyHistogram::GeoMeanNanos() const {
  uint64_t n = Count();
  if (n == 0) return 0;
  double log_sum = 0;
  uint64_t counted = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    uint64_t mid = BucketMidpoint(i);
    if (mid == 0) mid = 1;
    log_sum += std::log(static_cast<double>(mid)) * static_cast<double>(c);
    counted += c;
  }
  if (counted == 0) return 0;
  return std::exp(log_sum / static_cast<double>(counted));
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  uint64_t omin = other.min_.load(std::memory_order_relaxed);
  uint64_t prev = min_.load(std::memory_order_relaxed);
  while (omin < prev &&
         !min_.compare_exchange_weak(prev, omin, std::memory_order_relaxed)) {
  }
  uint64_t omax = other.max_.load(std::memory_order_relaxed);
  prev = max_.load(std::memory_order_relaxed);
  while (omax > prev &&
         !max_.compare_exchange_weak(prev, omax, std::memory_order_relaxed)) {
  }
}

std::string LatencyHistogram::SummaryMicros() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%.1fus p90=%.1fus p99=%.1fus p99.9=%.1fus",
                PercentileMicros(50), PercentileMicros(90),
                PercentileMicros(99), PercentileMicros(99.9));
  return buf;
}

}  // namespace preemptdb
