#include "util/crc32c.h"

namespace preemptdb::util {

namespace {

// Slice-by-8 tables, built once at first use. Table 0 is the classic
// byte-at-a-time table for the reflected polynomial; tables 1..7 fold eight
// input bytes per iteration.
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82f63b78u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int j = 1; j < 8; ++j) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[j][i] = c;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~crc;
  // Align to 8 bytes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    c = tb.t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    c ^= static_cast<uint32_t>(chunk);
    uint32_t hi = static_cast<uint32_t>(chunk >> 32);
    c = tb.t[7][c & 0xff] ^ tb.t[6][(c >> 8) & 0xff] ^
        tb.t[5][(c >> 16) & 0xff] ^ tb.t[4][(c >> 24) & 0xff] ^
        tb.t[3][hi & 0xff] ^ tb.t[2][(hi >> 8) & 0xff] ^
        tb.t[1][(hi >> 16) & 0xff] ^ tb.t[0][(hi >> 24) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = tb.t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
    --n;
  }
  return ~c;
}

}  // namespace preemptdb::util
