#include "util/clock.h"

#include <time.h>

namespace preemptdb {

uint64_t MonoNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

namespace {

double CalibrateTsc() {
  // Measure TSC frequency against CLOCK_MONOTONIC over a short window. 10ms
  // keeps startup fast while staying well above timer resolution.
  uint64_t t0 = MonoNanos();
  uint64_t c0 = RdtscP();
  uint64_t target = t0 + 10 * 1000 * 1000;
  uint64_t t1 = t0;
  while (t1 < target) t1 = MonoNanos();
  uint64_t c1 = RdtscP();
  return static_cast<double>(c1 - c0) * 1000.0 /
         static_cast<double>(t1 - t0);
}

}  // namespace

double TscCyclesPerUs() {
  static const double rate = CalibrateTsc();
  return rate;
}

}  // namespace preemptdb
