// Non-owning byte span for zero-copy record reads. Committed versions are
// immutable and never freed during a run, so a Slice obtained from a read
// stays valid for the reading transaction's lifetime.
#ifndef PREEMPTDB_UTIL_SLICE_H_
#define PREEMPTDB_UTIL_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace preemptdb {

struct Slice {
  const char* data = nullptr;
  size_t size = 0;

  Slice() = default;
  Slice(const char* d, size_t n) : data(d), size(n) {}
  explicit Slice(std::string_view sv) : data(sv.data()), size(sv.size()) {}

  std::string ToString() const { return std::string(data, size); }
  std::string_view View() const { return std::string_view(data, size); }
  bool empty() const { return size == 0; }

  // Reinterpret the payload as a fixed-layout row struct.
  template <typename T>
  const T* As() const {
    return size >= sizeof(T) ? reinterpret_cast<const T*>(data) : nullptr;
  }
};

}  // namespace preemptdb

#endif  // PREEMPTDB_UTIL_SLICE_H_
