// Simulated user interrupts (Intel UINTR) for PreemptDB.
//
// On real hardware (paper §2.3) a scheduler thread executes `senduipi` and
// the receiving thread traps into a userspace handler with the interrupted
// register state pushed as a uintr frame; `uiret` resumes it. This module
// reproduces those semantics on stock Linux with thread-directed SIGURG:
//
//   SendUipi(receiver)  ->  pthread_kill(thread, SIGURG)
//   uintr handler       ->  SIGURG handler (kernel pushes the full signal
//                           frame, the uintr-frame analog, on the preempted
//                           context's stack)
//   uiret               ->  sigreturn when the handler eventually returns
//   clui / stui         ->  per-thread delivery-enabled flag (Clui/Stui)
//
// The handler performs the paper's passive context switch (Fig. 6/Alg. 1):
// it saves the current transaction context into its TCB via pdb_fiber_switch
// and resumes the preemptive context. The preemptive context later performs
// the atomic active switch (Alg. 2) back with SwapToMain(), which lands back
// inside the handler, whose return pops the frozen frame — precisely the
// paper's "indirect jump to saved RIP" epilogue, with the kernel doing the
// register restore for us.
//
// Non-preemptible regions (paper §4.4) are a nested per-context counter in
// the TCB: if an interrupt arrives with the counter above zero the handler
// returns without switching. Two conflict modes are provided:
//   kDrop  — paper behaviour: the interrupt is dropped; the request is picked
//            up later via the regular scheduling path.
//   kDefer — extension: the switch fires at the outermost NonPreemptibleExit.
// See DESIGN.md §1 for the full substitution argument and
// uintr_backend_native.h for the real-UINTR instruction sequence.
#ifndef PREEMPTDB_UINTR_UINTR_H_
#define PREEMPTDB_UINTR_UINTR_H_

#include <pthread.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "uintr/fiber.h"
#include "util/macros.h"

namespace preemptdb::uintr {

// Transaction control block: the per-context state the paper stores when
// pausing a transaction (§4.2). Register state lives on the context's stack
// (saved_rsp); the fields the handler consults live here. `volatile` fields
// are read from the signal handler on the same thread.
struct Tcb {
  void* saved_rsp = nullptr;            // stack top while switched out
  volatile uint32_t npreempt_depth = 0; // TCB::lock()/unlock() nesting
  volatile bool preempt_pending = false;  // deferred interrupt flag
  void* cls_arena = nullptr;            // owned by src/cls (opaque here)
  int id = 0;                           // 0 = main, 1 = preemptive context
};

enum class PendingMode : uint8_t { kDrop, kDefer };

struct ReceiverStats {
  std::atomic<uint64_t> received{0};
  std::atomic<uint64_t> switched{0};           // passive switches taken
  std::atomic<uint64_t> deferred_taken{0};     // kDefer switches at unlock
  std::atomic<uint64_t> dropped_in_switch{0};  // RIP-range-check analog
  std::atomic<uint64_t> dropped_in_preempt{0}; // already in context 2
  std::atomic<uint64_t> dropped_disabled{0};   // clui in effect
  std::atomic<uint64_t> dropped_npreempt{0};   // non-preemptible region
};

class Receiver;

// Registers the calling thread as a user-interrupt receiver and creates its
// preemptive context, whose first activation runs entry(arg). The entry
// function must loop forever, calling SwapToMain() whenever it wants to
// resume the interrupted transaction. Returns a handle senders may use from
// any thread. One receiver per thread.
Receiver* RegisterReceiver(FiberEntry entry, void* arg,
                           size_t stack_bytes = kDefaultFiberStackBytes,
                           PendingMode mode = PendingMode::kDrop);

// Tears down the calling thread's receiver. The preemptive context must be
// parked (i.e., the thread must be running its main context).
void UnregisterReceiver();

// The calling thread's receiver, or nullptr.
Receiver* CurrentReceiver();

// TCB of the context the calling thread is currently executing. For threads
// that never registered a receiver this returns a per-thread dummy TCB so
// non-preemptible regions and CLS work uniformly everywhere.
Tcb* CurrentTcb();

// senduipi analog: deliver a user interrupt to `r`'s thread. Safe from any
// thread. Returns false if the receiver is being torn down.
bool SendUipi(Receiver* r);

// Voluntary (active) switches between the two contexts of the calling
// thread. SwapToPreempt may only be called from the main context and
// SwapToMain from the preemptive context. Both implement the paper's atomic
// active switch: delivery is logically masked for the duration (the handler's
// in-switch check refuses to stack a second switch on a half-saved TCB).
void SwapToPreempt();
void SwapToMain();

// True if the calling thread is currently executing its preemptive context.
bool InPreemptContext();

// clui/stui analogs: disable/enable user-interrupt delivery for the calling
// thread. Nesting is not counted (matches the instructions' semantics); use
// non-preemptible regions for nesting.
void Clui();
void Stui();
bool UintrEnabled();

// Non-preemptible regions (paper §4.4): nested; per current context.
void NonPreemptibleEnter();
void NonPreemptibleExit();
bool InNonPreemptibleRegion();

class NonPreemptibleRegion {
 public:
  NonPreemptibleRegion() { NonPreemptibleEnter(); }
  ~NonPreemptibleRegion() { NonPreemptibleExit(); }
  PDB_DISALLOW_COPY_AND_ASSIGN(NonPreemptibleRegion);
};

// Stats for the calling thread's receiver (must be registered).
const ReceiverStats& Stats();
// Stats for an arbitrary receiver handle (sender side).
const ReceiverStats& StatsOf(const Receiver* r);

// Number of passive+deferred switches on this receiver — used by tests.
uint64_t SwitchCount(const Receiver* r);

}  // namespace preemptdb::uintr

#endif  // PREEMPTDB_UINTR_UINTR_H_
