// Stackful fibers: the execution substrate for PreemptDB's per-worker
// transaction contexts (paper §4.2). A Fiber owns a guard-paged stack whose
// initial frame resumes at pdb_fiber_trampoline, which invokes the entry
// function. Switching is done with pdb_fiber_switch (fiber_switch.S).
#ifndef PREEMPTDB_UINTR_FIBER_H_
#define PREEMPTDB_UINTR_FIBER_H_

#include <cstddef>
#include <cstdint>

#include "util/macros.h"

extern "C" {
// Defined in fiber_switch.S.
void pdb_fiber_switch(void** save_rsp, void* restore_rsp);
// Called if a fiber entry function returns (it must not); aborts.
void pdb_fiber_exit();
}

namespace preemptdb::uintr {

using FiberEntry = void (*)(void* arg);

inline constexpr size_t kDefaultFiberStackBytes = 512 * 1024;

class Fiber {
 public:
  // Builds a fiber whose first activation runs entry(arg). The stack is
  // mmap-ed with an inaccessible guard page at the low end so overflow faults
  // instead of corrupting neighbouring memory.
  Fiber(FiberEntry entry, void* arg,
        size_t stack_bytes = kDefaultFiberStackBytes);
  ~Fiber();
  PDB_DISALLOW_COPY_AND_ASSIGN(Fiber);

  // The stack pointer to pass as `restore_rsp` for the first switch into this
  // fiber. After that, the owner tracks the live value (e.g., in a TCB).
  void* initial_rsp() const { return initial_rsp_; }

  size_t stack_bytes() const { return stack_bytes_; }

  // True if `addr` lies within this fiber's usable stack.
  bool ContainsAddress(const void* addr) const;

 private:
  void* mapping_ = nullptr;   // base of the mmap (guard page included)
  size_t mapping_bytes_ = 0;  // total mapped size
  void* initial_rsp_ = nullptr;
  size_t stack_bytes_ = 0;    // usable stack size
};

}  // namespace preemptdb::uintr

#endif  // PREEMPTDB_UINTR_FIBER_H_
