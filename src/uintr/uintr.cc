#include "uintr/uintr.h"

#include <errno.h>
#include <sched.h>
#include <signal.h>
#include <string.h>

#include <mutex>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace preemptdb::uintr {

namespace {
// Send-path failure accounting (snapshot-visible). A real UINTR senduipi
// cannot fail, but the pthread_kill substitution can — silently eating those
// failures would hide exactly the flakiness the scheduler's degradation
// policy needs to observe.
obs::Counter g_send_esrch("uintr.send_esrch");          // receiver died
obs::Counter g_send_eagain("uintr.send_eagain_retries"); // queue-full retries
obs::Counter g_send_failed("uintr.send_failed");        // gave up entirely
}  // namespace

// Receiver: per-worker-thread preemption state (the two transaction contexts
// of Fig. 5 plus delivery flags). All volatile fields are accessed only by
// the owning thread (possibly from its signal handler); atomics are for
// cross-thread visibility (sender side).
class Receiver {
 public:
  pthread_t thread;
  Tcb main_ctx;                       // context 1 in the paper's Fig. 5
  Tcb preempt_ctx;                    // context 2
  std::unique_ptr<Fiber> preempt_fiber;
  volatile int current = 0;           // which context is executing
  volatile bool in_switch = false;    // RIP-range-check analog (Alg. 1 l.2-6)
  volatile bool enabled = true;       // stui/clui state
  PendingMode mode = PendingMode::kDrop;
  std::atomic<bool> alive{false};
  ReceiverStats stats;

  Tcb* context(int id) { return id == 0 ? &main_ctx : &preempt_ctx; }
};

namespace {

thread_local Receiver* tls_receiver = nullptr;
// TCB of the currently running context. For unregistered threads, points at
// a per-thread dummy so NonPreemptibleEnter/Exit and CLS behave uniformly.
thread_local Tcb* tls_current_tcb = nullptr;
thread_local Tcb tls_dummy_tcb;

std::once_flag g_sigaction_once;

// Common switch path used by the handler (passive), SwapToPreempt /
// SwapToMain (active) and the deferred-at-unlock path. Must be called with
// interrupts logically masked: the caller either runs inside the signal
// handler (SIGURG blocked by sa_mask) or sets in_switch first, which the
// handler honors — the equivalent of the paper's Alg. 2 clui + RIP check.
void SwitchTo(Receiver* r, int target) {
  Tcb* from = r->context(r->current);
  Tcb* to = r->context(target);
  obs::Trace(obs::EventType::kFiberSwitchOut, static_cast<uint32_t>(target));
  r->in_switch = true;
  r->current = target;
  tls_current_tcb = to;
  pdb_fiber_switch(&from->saved_rsp, to->saved_rsp);
  // Execution resumes here when some later switch re-enters `from`. The
  // switcher already updated current/tls_current_tcb to describe us.
  r->in_switch = false;
  obs::Trace(obs::EventType::kFiberSwitchIn, static_cast<uint32_t>(from->id));
}

// The uintr handler (paper Alg. 1). Runs on the interrupted context's stack;
// the kernel-pushed signal frame below us is the uintr frame analog and
// stays frozen across the context switch until we return.
void SigurgHandler(int /*signo*/, siginfo_t* /*info*/, void* /*uctx*/) {
  Receiver* r = tls_receiver;
  if (r == nullptr) return;  // stray signal during registration/teardown
  r->stats.received.fetch_add(1, std::memory_order_relaxed);
  // Signal-safe by design: Trace() is a relaxed load + branch when disabled,
  // and a lock-free ring write when enabled.
  obs::Trace(obs::EventType::kUipiDelivered);

  // RIP check analog: an active switch is mid-flight; its TCB state is
  // half-saved, so return without touching the stacks (Alg. 1 lines 2-6).
  if (r->in_switch) {
    r->stats.dropped_in_switch.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Already serving the preemptive context: the current design does not
  // further interrupt an in-progress high-priority transaction (§4.1).
  if (r->current != 0) {
    r->stats.dropped_in_preempt.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!r->enabled) {
    r->stats.dropped_disabled.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Tcb* tcb = r->context(0);
  if (tcb->npreempt_depth > 0) {
    // Non-preemptible region (§4.4): return directly to the current context.
    r->stats.dropped_npreempt.fetch_add(1, std::memory_order_relaxed);
    if (r->mode == PendingMode::kDefer) tcb->preempt_pending = true;
    return;
  }
  r->stats.switched.fetch_add(1, std::memory_order_relaxed);
  SwitchTo(r, 1);
  // Back from the preemptive context; returning pops the signal frame and
  // resumes the interrupted transaction exactly where it was preempted.
}

void InstallSigaction() {
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &SigurgHandler;
  // SA_RESTART: interrupted syscalls resume, like real UINTR which never
  // aborts them. SIGURG is blocked while the handler (and anything it
  // switches to) runs, matching the CPU disabling user interrupts on
  // delivery (§2.3).
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  PDB_CHECK(sigaction(SIGURG, &sa, nullptr) == 0);
}

}  // namespace

Receiver* RegisterReceiver(FiberEntry entry, void* arg, size_t stack_bytes,
                           PendingMode mode) {
  PDB_CHECK_MSG(tls_receiver == nullptr, "thread already registered");
  std::call_once(g_sigaction_once, InstallSigaction);

  auto* r = new Receiver();
  r->thread = pthread_self();
  r->mode = mode;
  r->main_ctx.id = 0;
  r->preempt_ctx.id = 1;
  r->preempt_fiber = std::make_unique<Fiber>(entry, arg, stack_bytes);
  r->preempt_ctx.saved_rsp = r->preempt_fiber->initial_rsp();

  tls_current_tcb = &r->main_ctx;
  tls_receiver = r;
  r->alive.store(true, std::memory_order_release);

  // Make sure SIGURG is deliverable on this thread.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGURG);
  pthread_sigmask(SIG_UNBLOCK, &set, nullptr);
  return r;
}

void UnregisterReceiver() {
  Receiver* r = tls_receiver;
  PDB_CHECK_MSG(r != nullptr, "thread not registered");
  PDB_CHECK_MSG(r->current == 0, "cannot unregister from preempt context");
  r->alive.store(false, std::memory_order_release);
  // Block SIGURG so a racing SendUipi cannot trap into a dying receiver,
  // then detach the thread-locals. The Receiver object is leaked on purpose:
  // a sender may still hold the handle and read stats; receivers are
  // per-worker and workers live for the process lifetime in practice.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGURG);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  tls_receiver = nullptr;
  tls_current_tcb = nullptr;
}

Receiver* CurrentReceiver() { return tls_receiver; }

Tcb* CurrentTcb() {
  if (tls_current_tcb == nullptr) tls_current_tcb = &tls_dummy_tcb;
  return tls_current_tcb;
}

bool SendUipi(Receiver* r) {
  PDB_CHECK(r != nullptr);
  if (!r->alive.load(std::memory_order_acquire)) return false;
  if (PDB_UNLIKELY(fault::Enabled())) {
    // Injected delivery latency: stall the sender, not the receiver — the
    // paper's send->delivery gap is what the degradation policy watches.
    if (fault::ShouldFire(fault::Point::kSigDelay)) {
      uint64_t until =
          MonoNanos() + fault::Param(fault::Point::kSigDelay) * 1000;
      while (MonoNanos() < until) CpuPause();
    }
    // Injected lost interrupt: the signal evaporates in flight.
    if (fault::ShouldFire(fault::Point::kSigDrop)) return false;
  }
  // pthread_kill can fail where real senduipi cannot: ESRCH means the
  // receiver thread is gone (mark the handle dead so senders stop trying);
  // EAGAIN means the kernel's signal queue is exhausted (transient — retry a
  // bounded number of times before reporting the send lost).
  constexpr int kMaxEagainRetries = 8;
  for (int attempt = 0;; ++attempt) {
    int err = pthread_kill(r->thread, SIGURG);
    if (PDB_LIKELY(err == 0)) return true;
    if (err == ESRCH) {
      r->alive.store(false, std::memory_order_release);
      g_send_esrch.Add();
      return false;
    }
    if (err == EAGAIN && attempt < kMaxEagainRetries) {
      g_send_eagain.Add();
      sched_yield();
      continue;
    }
    g_send_failed.Add();
    return false;
  }
}

void SwapToPreempt() {
  Receiver* r = tls_receiver;
  PDB_CHECK_MSG(r != nullptr, "SwapToPreempt on unregistered thread");
  PDB_CHECK_MSG(r->current == 0, "SwapToPreempt from preempt context");
  SwitchTo(r, 1);
}

void SwapToMain() {
  Receiver* r = tls_receiver;
  PDB_CHECK_MSG(r != nullptr, "SwapToMain on unregistered thread");
  PDB_CHECK_MSG(r->current == 1, "SwapToMain from main context");
  SwitchTo(r, 0);
}

bool InPreemptContext() {
  Receiver* r = tls_receiver;
  return r != nullptr && r->current == 1;
}

void Clui() {
  Receiver* r = tls_receiver;
  if (r != nullptr) r->enabled = false;
}

void Stui() {
  Receiver* r = tls_receiver;
  if (r != nullptr) r->enabled = true;
}

bool UintrEnabled() {
  Receiver* r = tls_receiver;
  return r != nullptr && r->enabled;
}

void NonPreemptibleEnter() {
  Tcb* t = CurrentTcb();
  t->npreempt_depth = t->npreempt_depth + 1;
}

void NonPreemptibleExit() {
  Tcb* t = CurrentTcb();
  PDB_DCHECK(t->npreempt_depth > 0);
  uint32_t depth = t->npreempt_depth - 1;
  t->npreempt_depth = depth;
  if (depth == 0 && PDB_UNLIKELY(t->preempt_pending)) {
    t->preempt_pending = false;
    Receiver* r = tls_receiver;
    // Take the deferred interrupt now (kDefer mode): only meaningful when
    // leaving the outermost region of the main context with delivery on.
    if (r != nullptr && r->current == 0 && r->enabled && !r->in_switch) {
      r->stats.deferred_taken.fetch_add(1, std::memory_order_relaxed);
      SwitchTo(r, 1);
    }
  }
}

bool InNonPreemptibleRegion() { return CurrentTcb()->npreempt_depth > 0; }

const ReceiverStats& Stats() {
  PDB_CHECK(tls_receiver != nullptr);
  return tls_receiver->stats;
}

const ReceiverStats& StatsOf(const Receiver* r) { return r->stats; }

uint64_t SwitchCount(const Receiver* r) {
  return r->stats.switched.load(std::memory_order_relaxed) +
         r->stats.deferred_taken.load(std::memory_order_relaxed);
}

}  // namespace preemptdb::uintr
