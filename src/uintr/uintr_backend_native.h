// Native Intel UINTR backend — porting guide.
//
// This header documents the exact hardware path the paper uses, for porting
// this repository to a Sapphire-Rapids-class machine running Intel's
// uintr-enabled kernel (github.com/intel/uintr-linux-kernel, Linux 6.2).
// It compiles only when the toolchain targets -muintr and the kernel exposes
// the uintr_* syscalls; the simulated SIGURG backend in uintr.cc is used
// everywhere else and implements identical semantics (see DESIGN.md §1).
//
// Hardware/kernel mapping of this module's API:
//
//   RegisterReceiver:
//     uintr_register_handler(handler, 0)        // syscall 471
//     fd = uintr_create_fd(vector, 0)           // syscall 473 (receiver fd)
//   Sender setup (scheduler thread):
//     uipi_index = uintr_register_sender(fd, 0) // syscall 474
//   SendUipi:
//     _senduipi(uipi_index)                     // <x86gprintrin.h>
//   Clui/Stui:
//     _clui() / _stui()
//   Handler return (uiret):
//     the compiler emits it for functions marked
//     __attribute__((interrupt)) when built with -muintr; our handler is
//     instead a small assembly thunk (paper Alg. 1) because it must move RSP
//     to the other context's TCB between the register save and restore.
//
// The handler thunk per paper Alg. 1:
//
//   interrupt_handler:
//     cmpq  $.swap_context_end, 8(%rsp)   # RIP in the uintr frame
//     jg    .continue
//     cmpq  $.swap_context_start, 8(%rsp)
//     jg    .exit                         # interrupted an active switch
//   .continue:
//     push  <all general registers>
//     xsave <extended state>              # FP/SIMD, paper §2.3
//     call  uintr_handler_helper          # C++: CLS swap, npreempt check,
//                                         # returns destination RSP
//     movq  %rax, %rsp
//     xrstor / pop <registers>
//     uiret                               # pops RIP/RFLAGS/RSP, re-enables
//   .exit:
//     uiret
//
// The active switch (paper Alg. 2) additionally brackets with clui/stui and
// performs the red-zone-respecting indirect jump:
//
//   swap_context:
//   .swap_context_start:
//     clui
//     push <callee-saved registers>
//     call swap_context_helper
//     movq %rax, %rsp
//     pop  <callee-saved registers>
//     movq %rcx, -0x80(%rsp)              # stash RIP below the red zone
//     stui
//     jmp  *-0x80(%rsp)
//   .swap_context_end:
//
// In the simulated backend, the kernel's signal frame plays the uintr frame's
// role (it already contains the XSAVE area), SIGURG's sa_mask plays the
// CPU's "interrupts disabled inside the handler" rule, and the in_switch
// flag plays the RIP-range check.
#ifndef PREEMPTDB_UINTR_UINTR_BACKEND_NATIVE_H_
#define PREEMPTDB_UINTR_UINTR_BACKEND_NATIVE_H_

#if defined(__UINTR__)
#include <x86gprintrin.h>

namespace preemptdb::uintr::native {

inline void SendUipiHw(unsigned long long uipi_index) {
  _senduipi(uipi_index);
}
inline void CluiHw() { _clui(); }
inline void StuiHw() { _stui(); }
inline bool TestUiHw() { return _testui(); }

}  // namespace preemptdb::uintr::native
#endif  // __UINTR__

#endif  // PREEMPTDB_UINTR_UINTR_BACKEND_NATIVE_H_
