#include "uintr/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

extern "C" {
// Defined in fiber_switch.S.
void pdb_fiber_trampoline();

void pdb_fiber_exit() {
  std::fprintf(stderr, "preemptdb: fiber entry function returned\n");
  std::abort();
}
}

namespace preemptdb::uintr {

namespace {
size_t PageSize() {
  static const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return page;
}
}  // namespace

Fiber::Fiber(FiberEntry entry, void* arg, size_t stack_bytes) {
  const size_t page = PageSize();
  // Round the usable stack to whole pages and add one guard page below it.
  stack_bytes_ = (stack_bytes + page - 1) & ~(page - 1);
  mapping_bytes_ = stack_bytes_ + page;
  mapping_ = mmap(nullptr, mapping_bytes_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  PDB_CHECK_MSG(mapping_ != MAP_FAILED, "fiber stack mmap failed");
  PDB_CHECK(mprotect(mapping_, page, PROT_NONE) == 0);

  // Build the initial frame so the first pdb_fiber_switch into this fiber
  // pops rbp/rbx/r12/r13/r14/r15 and returns into pdb_fiber_trampoline with
  // rbx = entry and r12 = arg.
  uintptr_t top = reinterpret_cast<uintptr_t>(mapping_) + mapping_bytes_;
  top &= ~static_cast<uintptr_t>(15);  // 16-byte align
  top -= 64;                           // scratch headroom above the frame

  // pdb_fiber_switch pops r15,r14,r13,r12,rbx,rbp (in that order, from the
  // lowest address up) and then returns, so lay the frame out accordingly.
  uint64_t* sp = reinterpret_cast<uint64_t*>(top);
  *--sp = reinterpret_cast<uint64_t>(&pdb_fiber_trampoline);  // return slot
  *--sp = 0;                                   // rbp
  *--sp = reinterpret_cast<uint64_t>(entry);   // rbx
  *--sp = reinterpret_cast<uint64_t>(arg);     // r12
  *--sp = 0;                                   // r13
  *--sp = 0;                                   // r14
  *--sp = 0;                                   // r15
  initial_rsp_ = sp;
}

Fiber::~Fiber() {
  if (mapping_ != nullptr) munmap(mapping_, mapping_bytes_);
}

bool Fiber::ContainsAddress(const void* addr) const {
  auto a = reinterpret_cast<uintptr_t>(addr);
  auto lo = reinterpret_cast<uintptr_t>(mapping_) + PageSize();
  auto hi = reinterpret_cast<uintptr_t>(mapping_) + mapping_bytes_;
  return a >= lo && a < hi;
}

}  // namespace preemptdb::uintr
