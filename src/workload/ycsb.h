// YCSB-style key-value workload over the PreemptDB engine: Zipfian or
// uniform key choice, standard A/B/C/E/F operation mixes, configurable
// multi-operation transactions. Used by tests and the contention-ablation
// bench as a second workload domain beside TPC-C/TPC-H.
#ifndef PREEMPTDB_WORKLOAD_YCSB_H_
#define PREEMPTDB_WORKLOAD_YCSB_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "engine/engine.h"
#include "sched/request.h"
#include "util/random.h"

namespace preemptdb::workload {

enum class YcsbMix : uint8_t {
  kA,  // 50% read / 50% update
  kB,  // 95% read / 5% update
  kC,  // 100% read
  kE,  // 95% short scan / 5% insert
  kF,  // 50% read / 50% read-modify-write
};

const char* YcsbMixName(YcsbMix mix);

struct YcsbConfig {
  uint64_t record_count = 100000;
  uint32_t value_bytes = 100;
  // Operations per transaction (1 = classic YCSB; >1 exercises conflicts).
  int ops_per_txn = 4;
  double zipf_theta = 0.99;  // 0 = uniform
  int max_scan_len = 100;
  YcsbMix mix = YcsbMix::kA;

  static YcsbConfig Small() {
    YcsbConfig c;
    c.record_count = 2000;
    return c;
  }
};

class YcsbWorkload {
 public:
  // Request type id (distinct from TPC-C 0..4 and Q2 5).
  static constexpr uint32_t kYcsbTxn = 6;
  // Full-table scan "analytics" request (long, low-priority stand-in).
  static constexpr uint32_t kYcsbScanAll = 7;

  YcsbWorkload(engine::Engine* engine, YcsbConfig config);
  PDB_DISALLOW_COPY_AND_ASSIGN(YcsbWorkload);

  void Load();

  sched::Request GenTxn(FastRandom& rng) const;
  sched::Request GenScanAll(FastRandom& rng) const;

  Rc Execute(const sched::Request& req, int worker_id);

  // Single-attempt bodies (Execute adds bounded retries).
  Rc RunTxn(uint64_t seed);
  Rc RunScanAll();

  engine::Table* table() { return table_; }
  const YcsbConfig& config() const { return config_; }

  // Operation counters (diagnostics / tests).
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> rmws{0};

 private:
  uint64_t PickKey(FastRandom& rng) const;

  engine::Engine* const engine_;
  const YcsbConfig config_;
  engine::Table* table_ = nullptr;
  std::unique_ptr<ZipfianGenerator> zipf_;  // shared; guarded by caller rng
  mutable SpinLatch zipf_latch_;
  std::atomic<uint64_t> insert_cursor_;
};

}  // namespace preemptdb::workload

#endif  // PREEMPTDB_WORKLOAD_YCSB_H_
