// The five TPC-C transaction profiles (spec §2.4-2.8) plus consistency
// checks. Each body is a single attempt: Begin, operate, Commit/Abort;
// retries live in TpccWorkload::Execute.
#include <algorithm>
#include <vector>

#include "workload/tpcc.h"

namespace preemptdb::workload {

namespace {

using engine::Transaction;
using tpcc_keys::NameHash;

template <typename Row>
std::string_view AsView(const Row& row) {
  return std::string_view(reinterpret_cast<const char*>(&row), sizeof(Row));
}

// Aborts `txn` and propagates `rc`.
Rc Fail(Transaction* txn, Rc rc) {
  txn->Abort();
  return rc;
}

}  // namespace

bool TpccWorkload::CustomerByName(Transaction* txn, int64_t w, int64_t d,
                                  const char* last, CustomerRow* out) {
  uint64_t h = NameHash(last);
  uint64_t lo = tpcc_keys::CustomerName(w, d, h, 0);
  uint64_t hi = tpcc_keys::CustomerName(w, d, h, (1 << 17) - 1);
  std::vector<CustomerRow> matches;
  txn->ScanSecondary(customer_, customer_name_idx_, lo, hi,
                     [&](index::Key, Slice payload) {
                       const auto* row = payload.As<CustomerRow>();
                       if (row != nullptr &&
                           std::strcmp(row->c_last, last) == 0) {
                         matches.push_back(*row);
                       }
                       return true;
                     });
  if (matches.empty()) return false;
  // Spec 2.5.2.2: order by c_first, take the row at position ceil(n/2).
  std::sort(matches.begin(), matches.end(),
            [](const CustomerRow& a, const CustomerRow& b) {
              return std::strcmp(a.c_first, b.c_first) < 0;
            });
  *out = matches[matches.size() / 2];
  return true;
}

Rc TpccWorkload::RunNewOrder(uint64_t w_in, uint64_t seed) {
  FastRandom rng(seed);
  const auto w = static_cast<int64_t>(w_in);
  int64_t d = rng.Uniform(1, config_.districts_per_warehouse);
  int64_t c = rng.NURand(1023, 1, config_.customers_per_district);
  int64_t ol_cnt = rng.Uniform(5, 15);
  bool rollback = rng.Uniform(1, 100) == 1;  // spec 2.4.1.4

  struct Line {
    int64_t i_id;
    int64_t supply_w;
    int64_t qty;
  };
  Line lines[15];
  bool all_local = true;
  for (int64_t i = 0; i < ol_cnt; ++i) {
    lines[i].i_id = rng.NURand(8191, 1, config_.items);
    if (config_.warehouses > 1 &&
        rng.Uniform(1, 100) <= config_.remote_pct) {
      int64_t other = rng.Uniform(1, config_.warehouses - 1);
      lines[i].supply_w = other >= w ? other + 1 : other;
      all_local = false;
    } else {
      lines[i].supply_w = w;
    }
    lines[i].qty = rng.Uniform(1, 10);
  }
  if (rollback) lines[ol_cnt - 1].i_id = config_.items + 1;  // unused item

  Transaction* txn = engine_->Begin();
  Slice s;

  if (!IsOk(txn->Read(warehouse_, tpcc_keys::Warehouse(w), &s))) {
    return Fail(txn, Rc::kNotFound);
  }
  double w_tax = s.As<WarehouseRow>()->w_tax;

  if (!IsOk(txn->Read(district_, tpcc_keys::District(w, d), &s))) {
    return Fail(txn, Rc::kNotFound);
  }
  DistrictRow dr = *s.As<DistrictRow>();
  int64_t o_id = dr.d_next_o_id;
  dr.d_next_o_id += 1;
  Rc rc = txn->Update(district_, tpcc_keys::District(w, d), AsView(dr));
  if (!IsOk(rc)) return Fail(txn, rc);

  if (!IsOk(txn->Read(customer_, tpcc_keys::Customer(w, d, c), &s))) {
    return Fail(txn, Rc::kNotFound);
  }
  double c_discount = s.As<CustomerRow>()->c_discount;
  double d_tax = dr.d_tax;

  OrderRow orow{};
  orow.o_id = static_cast<int32_t>(o_id);
  orow.o_d_id = static_cast<int32_t>(d);
  orow.o_w_id = static_cast<int32_t>(w);
  orow.o_c_id = static_cast<int32_t>(c);
  orow.o_carrier_id = 0;
  orow.o_ol_cnt = static_cast<int32_t>(ol_cnt);
  orow.o_all_local = all_local ? 1 : 0;
  Transaction::SecondaryEntry sec{order_cust_idx_,
                                  tpcc_keys::OrderByCustomer(w, d, c, o_id)};
  rc = txn->InsertWithSecondaries(order_, tpcc_keys::Order(w, d, o_id),
                                  AsView(orow), &sec, 1);
  if (!IsOk(rc)) return Fail(txn, rc);

  NewOrderRow nr{static_cast<int32_t>(o_id), static_cast<int32_t>(d),
                 static_cast<int32_t>(w)};
  rc = txn->Insert(new_order_, tpcc_keys::NewOrder(w, d, o_id), AsView(nr));
  if (!IsOk(rc)) return Fail(txn, rc);

  double total = 0;
  for (int64_t i = 0; i < ol_cnt; ++i) {
    const Line& ln = lines[i];
    if (!IsOk(txn->Read(item_, tpcc_keys::Item(ln.i_id), &s))) {
      // Unused item: the spec's intentional user abort path.
      return Fail(txn, Rc::kAbortUser);
    }
    double price = s.As<ItemRow>()->i_price;

    if (!IsOk(txn->Read(stock_, tpcc_keys::Stock(ln.supply_w, ln.i_id), &s))) {
      return Fail(txn, Rc::kNotFound);
    }
    StockRow sr = *s.As<StockRow>();
    sr.s_quantity = sr.s_quantity >= ln.qty + 10
                        ? sr.s_quantity - static_cast<int32_t>(ln.qty)
                        : sr.s_quantity - static_cast<int32_t>(ln.qty) + 91;
    sr.s_ytd += static_cast<int32_t>(ln.qty);
    sr.s_order_cnt += 1;
    if (ln.supply_w != w) sr.s_remote_cnt += 1;
    rc = txn->Update(stock_, tpcc_keys::Stock(ln.supply_w, ln.i_id),
                     AsView(sr));
    if (!IsOk(rc)) return Fail(txn, rc);

    OrderLineRow olr{};
    olr.ol_o_id = static_cast<int32_t>(o_id);
    olr.ol_d_id = static_cast<int32_t>(d);
    olr.ol_w_id = static_cast<int32_t>(w);
    olr.ol_number = static_cast<int32_t>(i + 1);
    olr.ol_i_id = static_cast<int32_t>(ln.i_id);
    olr.ol_supply_w_id = static_cast<int32_t>(ln.supply_w);
    olr.ol_quantity = static_cast<int32_t>(ln.qty);
    olr.ol_amount = ln.qty * price;
    std::memcpy(olr.ol_dist_info, sr.s_dist[d - 1], sizeof(olr.ol_dist_info));
    rc = txn->Insert(order_line_, tpcc_keys::OrderLine(w, d, o_id, i + 1),
                     AsView(olr));
    if (!IsOk(rc)) return Fail(txn, rc);
    total += olr.ol_amount;
  }
  total *= (1 - c_discount) * (1 + w_tax + d_tax);
  (void)total;

  return txn->Commit();
}

Rc TpccWorkload::RunPayment(uint64_t w_in, uint64_t seed) {
  FastRandom rng(seed);
  const auto w = static_cast<int64_t>(w_in);
  int64_t d = rng.Uniform(1, config_.districts_per_warehouse);
  double amount = rng.Uniform(100, 500000) / 100.0;

  // Spec 2.5.1.2: 85% home, 15% remote customer.
  int64_t c_w = w;
  int64_t c_d = d;
  if (config_.warehouses > 1 && rng.Uniform(1, 100) <= config_.remote_pct) {
    int64_t other = rng.Uniform(1, config_.warehouses - 1);
    c_w = other >= w ? other + 1 : other;
    c_d = rng.Uniform(1, config_.districts_per_warehouse);
  }
  bool by_name = rng.Uniform(1, 100) <= 60;
  char lastname[17];
  int64_t c_id = 0;
  if (by_name) {
    MakeLastName(PickLastNameNum(rng), lastname);
  } else {
    c_id = rng.NURand(1023, 1, config_.customers_per_district);
  }

  Transaction* txn = engine_->Begin();
  Slice s;

  if (!IsOk(txn->Read(warehouse_, tpcc_keys::Warehouse(w), &s))) {
    return Fail(txn, Rc::kNotFound);
  }
  WarehouseRow wr = *s.As<WarehouseRow>();
  wr.w_ytd += amount;
  Rc rc = txn->Update(warehouse_, tpcc_keys::Warehouse(w), AsView(wr));
  if (!IsOk(rc)) return Fail(txn, rc);

  if (!IsOk(txn->Read(district_, tpcc_keys::District(w, d), &s))) {
    return Fail(txn, Rc::kNotFound);
  }
  DistrictRow dr = *s.As<DistrictRow>();
  dr.d_ytd += amount;
  rc = txn->Update(district_, tpcc_keys::District(w, d), AsView(dr));
  if (!IsOk(rc)) return Fail(txn, rc);

  CustomerRow cr;
  if (by_name) {
    if (!CustomerByName(txn, c_w, c_d, lastname, &cr)) {
      return Fail(txn, Rc::kNotFound);
    }
  } else {
    if (!IsOk(txn->Read(customer_, tpcc_keys::Customer(c_w, c_d, c_id), &s))) {
      return Fail(txn, Rc::kNotFound);
    }
    cr = *s.As<CustomerRow>();
  }
  cr.c_balance -= amount;
  cr.c_ytd_payment += amount;
  cr.c_payment_cnt += 1;
  if (std::strcmp(cr.c_credit, "BC") == 0) {
    // Bad credit: prepend payment info to c_data (spec 2.5.2.2).
    char merged[sizeof(cr.c_data)];
    int n = std::snprintf(merged, sizeof(merged), "%d %d %d %d %ld %.2f|",
                          cr.c_id, cr.c_d_id, cr.c_w_id, dr.d_id,
                          static_cast<long>(w), amount);
    size_t off = std::min<size_t>(static_cast<size_t>(n), sizeof(merged) - 1);
    size_t room = sizeof(merged) - 1 - off;
    std::memcpy(merged + off, cr.c_data,
                std::min(room, std::strlen(cr.c_data)));
    merged[std::min(sizeof(merged) - 1,
                    off + std::min(room, std::strlen(cr.c_data)))] = '\0';
    std::memcpy(cr.c_data, merged, sizeof(cr.c_data));
    cr.c_data[sizeof(cr.c_data) - 1] = '\0';
  }
  rc = txn->Update(customer_, tpcc_keys::Customer(c_w, c_d, cr.c_id),
                   AsView(cr));
  if (!IsOk(rc)) return Fail(txn, rc);

  HistoryRow hr{};
  hr.h_c_id = cr.c_id;
  hr.h_c_d_id = static_cast<int32_t>(c_d);
  hr.h_c_w_id = static_cast<int32_t>(c_w);
  hr.h_d_id = static_cast<int32_t>(d);
  hr.h_w_id = static_cast<int32_t>(w);
  hr.h_amount = amount;
  rc = txn->Insert(history_, history_key_.fetch_add(1), AsView(hr));
  if (!IsOk(rc)) return Fail(txn, rc);

  return txn->Commit();
}

Rc TpccWorkload::RunOrderStatus(uint64_t w_in, uint64_t seed) {
  FastRandom rng(seed);
  const auto w = static_cast<int64_t>(w_in);
  int64_t d = rng.Uniform(1, config_.districts_per_warehouse);
  bool by_name = rng.Uniform(1, 100) <= 60;

  Transaction* txn = engine_->Begin();
  Slice s;

  CustomerRow cr;
  if (by_name) {
    char lastname[17];
    MakeLastName(PickLastNameNum(rng), lastname);
    if (!CustomerByName(txn, w, d, lastname, &cr)) {
      return Fail(txn, Rc::kNotFound);
    }
  } else {
    int64_t c = rng.NURand(1023, 1, config_.customers_per_district);
    if (!IsOk(txn->Read(customer_, tpcc_keys::Customer(w, d, c), &s))) {
      return Fail(txn, Rc::kNotFound);
    }
    cr = *s.As<CustomerRow>();
  }

  // Most recent order of this customer.
  OrderRow last_order{};
  bool found = false;
  txn->ScanSecondaryReverse(
      order_, order_cust_idx_, tpcc_keys::OrderByCustomer(w, d, cr.c_id, 0),
      tpcc_keys::OrderByCustomer(w, d, cr.c_id, (1 << 28) - 1),
      [&](index::Key, Slice payload) {
        last_order = *payload.As<OrderRow>();
        found = true;
        return false;  // newest only
      });
  if (found) {
    for (int64_t ol = 1; ol <= last_order.o_ol_cnt; ++ol) {
      txn->Read(order_line_,
                tpcc_keys::OrderLine(w, d, last_order.o_id, ol), &s);
    }
  }
  return txn->Commit();
}

Rc TpccWorkload::RunDelivery(uint64_t w_in, uint64_t seed) {
  FastRandom rng(seed);
  const auto w = static_cast<int64_t>(w_in);
  int64_t carrier = rng.Uniform(1, 10);

  Transaction* txn = engine_->Begin();
  Slice s;
  for (int64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
    // Oldest undelivered order in this district.
    int64_t o_id = -1;
    txn->Scan(new_order_, tpcc_keys::NewOrder(w, d, 0),
              tpcc_keys::NewOrder(w, d, (1 << 28) - 1),
              [&](index::Key, Slice payload) {
                o_id = payload.As<NewOrderRow>()->no_o_id;
                return false;  // oldest only
              });
    if (o_id < 0) continue;  // spec 2.7.4.2: skip empty districts

    Rc rc = txn->Delete(new_order_, tpcc_keys::NewOrder(w, d, o_id));
    if (rc == Rc::kNotFound) continue;  // raced with another Delivery
    if (!IsOk(rc)) return Fail(txn, rc);

    if (!IsOk(txn->Read(order_, tpcc_keys::Order(w, d, o_id), &s))) {
      return Fail(txn, Rc::kNotFound);
    }
    OrderRow orow = *s.As<OrderRow>();
    orow.o_carrier_id = static_cast<int32_t>(carrier);
    rc = txn->Update(order_, tpcc_keys::Order(w, d, o_id), AsView(orow));
    if (!IsOk(rc)) return Fail(txn, rc);

    double amount_sum = 0;
    for (int64_t ol = 1; ol <= orow.o_ol_cnt; ++ol) {
      if (!IsOk(txn->Read(order_line_, tpcc_keys::OrderLine(w, d, o_id, ol),
                          &s))) {
        continue;
      }
      OrderLineRow olr = *s.As<OrderLineRow>();
      amount_sum += olr.ol_amount;
      olr.ol_delivery_d = 1;  // "now"
      rc = txn->Update(order_line_, tpcc_keys::OrderLine(w, d, o_id, ol),
                       AsView(olr));
      if (!IsOk(rc)) return Fail(txn, rc);
    }

    if (!IsOk(txn->Read(customer_,
                        tpcc_keys::Customer(w, d, orow.o_c_id), &s))) {
      return Fail(txn, Rc::kNotFound);
    }
    CustomerRow cr = *s.As<CustomerRow>();
    cr.c_balance += amount_sum;
    cr.c_delivery_cnt += 1;
    rc = txn->Update(customer_, tpcc_keys::Customer(w, d, orow.o_c_id),
                     AsView(cr));
    if (!IsOk(rc)) return Fail(txn, rc);
  }
  return txn->Commit();
}

Rc TpccWorkload::RunStockLevel(uint64_t w_in, uint64_t seed) {
  FastRandom rng(seed);
  const auto w = static_cast<int64_t>(w_in);
  int64_t d = rng.Uniform(1, config_.districts_per_warehouse);
  int64_t threshold = rng.Uniform(10, 20);

  Transaction* txn = engine_->Begin();
  Slice s;
  if (!IsOk(txn->Read(district_, tpcc_keys::District(w, d), &s))) {
    return Fail(txn, Rc::kNotFound);
  }
  int64_t next_o = s.As<DistrictRow>()->d_next_o_id;
  int64_t from_o = std::max<int64_t>(1, next_o - 20);

  std::vector<int32_t> low_items;
  txn->Scan(order_line_, tpcc_keys::OrderLine(w, d, from_o, 0),
            tpcc_keys::OrderLine(w, d, next_o - 1, 15),
            [&](index::Key, Slice payload) {
              int32_t i_id = payload.As<OrderLineRow>()->ol_i_id;
              Slice stock_s;
              if (IsOk(txn->Read(stock_, tpcc_keys::Stock(w, i_id),
                                 &stock_s)) &&
                  stock_s.As<StockRow>()->s_quantity < threshold) {
                low_items.push_back(i_id);
              }
              return true;
            });
  std::sort(low_items.begin(), low_items.end());
  low_items.erase(std::unique(low_items.begin(), low_items.end()),
                  low_items.end());
  return txn->Commit();
}

uint64_t TpccWorkload::CheckConsistency() {
  uint64_t checked = 0;
  Transaction* txn = engine_->Begin();
  Slice s;
  for (int64_t w = 1; w <= config_.warehouses; ++w) {
    PDB_CHECK(IsOk(txn->Read(warehouse_, tpcc_keys::Warehouse(w), &s)));
    double w_ytd = s.As<WarehouseRow>()->w_ytd;
    double d_ytd_sum = 0;
    for (int64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      PDB_CHECK(IsOk(txn->Read(district_, tpcc_keys::District(w, d), &s)));
      const DistrictRow dr = *s.As<DistrictRow>();
      d_ytd_sum += dr.d_ytd;

      // Consistency condition 2 (spec 3.3.2.2): d_next_o_id - 1 equals the
      // max o_id in ORDER and NEW-ORDER for this district.
      int64_t max_o = -1;
      txn->Scan(order_, tpcc_keys::Order(w, d, 0),
                tpcc_keys::Order(w, d, (1 << 28) - 1),
                [&](index::Key, Slice payload) {
                  max_o = std::max<int64_t>(max_o,
                                            payload.As<OrderRow>()->o_id);
                  return true;
                });
      if (max_o >= 0) {
        PDB_CHECK_MSG(dr.d_next_o_id - 1 == max_o,
                      "d_next_o_id inconsistent with max(o_id)");
      }

      // Consistency condition 3: NEW-ORDER ids are contiguous.
      int64_t min_no = INT64_MAX, max_no = -1, cnt_no = 0;
      txn->Scan(new_order_, tpcc_keys::NewOrder(w, d, 0),
                tpcc_keys::NewOrder(w, d, (1 << 28) - 1),
                [&](index::Key, Slice payload) {
                  int64_t o = payload.As<NewOrderRow>()->no_o_id;
                  min_no = std::min(min_no, o);
                  max_no = std::max(max_no, o);
                  ++cnt_no;
                  return true;
                });
      if (cnt_no > 0) {
        PDB_CHECK_MSG(max_no - min_no + 1 == cnt_no,
                      "NEW-ORDER ids not contiguous");
      }

      // Consistency condition 4 on a sample: o_ol_cnt matches ORDER-LINE
      // rows for the district's most recent orders.
      int64_t lo = std::max<int64_t>(1, dr.d_next_o_id - 10);
      for (int64_t o = lo; o < dr.d_next_o_id; ++o) {
        if (!IsOk(txn->Read(order_, tpcc_keys::Order(w, d, o), &s))) continue;
        int32_t ol_cnt = s.As<OrderRow>()->o_ol_cnt;
        int64_t lines = 0;
        txn->Scan(order_line_, tpcc_keys::OrderLine(w, d, o, 0),
                  tpcc_keys::OrderLine(w, d, o, 31),
                  [&](index::Key, Slice) {
                    ++lines;
                    return true;
                  });
        PDB_CHECK_MSG(lines == ol_cnt, "o_ol_cnt mismatch with ORDER-LINE");
        ++checked;
      }
      ++checked;
    }
    // Consistency condition 1: W_YTD = sum(D_YTD).
    PDB_CHECK_MSG(std::abs(w_ytd - d_ytd_sum) < 0.01,
                  "W_YTD != sum(D_YTD)");
    ++checked;
  }
  PDB_CHECK(IsOk(txn->Commit()));
  return checked;
}

}  // namespace preemptdb::workload
