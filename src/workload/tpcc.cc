// TPC-C table creation, population, and request generation.
#include "workload/tpcc.h"

#include <algorithm>
#include <string_view>

namespace preemptdb::workload {

namespace {

using engine::Transaction;
using tpcc_keys::NameHash;

template <typename Row>
std::string_view AsView(const Row& row) {
  return std::string_view(reinterpret_cast<const char*>(&row), sizeof(Row));
}

void CopyStr(char* dst, size_t cap, const std::string& s) {
  size_t n = std::min(cap - 1, s.size());
  std::memcpy(dst, s.data(), n);
  dst[n] = '\0';
}

// Commits and reopens a bulk-load transaction every `kLoadBatch` rows to
// bound write-set size.
constexpr int kLoadBatch = 2000;

class Loader {
 public:
  explicit Loader(engine::Engine* engine) : engine_(engine) {
    txn_ = engine_->Begin();
  }
  ~Loader() { PDB_CHECK(IsOk(txn_->Commit())); }

  Transaction* txn() {
    if (++ops_ % kLoadBatch == 0) {
      PDB_CHECK(IsOk(txn_->Commit()));
      txn_ = engine_->Begin();
    }
    return txn_;
  }

 private:
  engine::Engine* engine_;
  Transaction* txn_;
  int ops_ = 0;
};

}  // namespace

void MakeLastName(int64_t num, char* out) {
  static const char* kSyllables[] = {"BAR",  "OUGHT", "ABLE", "PRI", "PRES",
                                     "ESE",  "ANTI",  "CALLY", "ATION", "EING"};
  PDB_DCHECK(num >= 0 && num <= 999);
  out[0] = '\0';
  std::strcat(out, kSyllables[num / 100]);
  std::strcat(out, kSyllables[(num / 10) % 10]);
  std::strcat(out, kSyllables[num % 10]);
}

TpccWorkload::TpccWorkload(engine::Engine* engine, TpccConfig config)
    : engine_(engine), config_(config) {}

void TpccWorkload::Load() {
  warehouse_ = engine_->CreateTable("warehouse");
  district_ = engine_->CreateTable("district");
  customer_ = engine_->CreateTable("customer");
  history_ = engine_->CreateTable("history");
  new_order_ = engine_->CreateTable("new_order");
  order_ = engine_->CreateTable("oorder");
  order_line_ = engine_->CreateTable("order_line");
  item_ = engine_->CreateTable("item");
  stock_ = engine_->CreateTable("stock");
  customer_name_idx_ = customer_->CreateSecondaryIndex("customer_name");
  order_cust_idx_ = order_->CreateSecondaryIndex("order_customer");

  FastRandom rng(0xdbdbdbull);
  Loader loader(engine_);

  // ITEM.
  for (int64_t i = 1; i <= config_.items; ++i) {
    ItemRow row{};
    row.i_id = static_cast<int32_t>(i);
    row.i_im_id = static_cast<int32_t>(rng.Uniform(1, 10000));
    row.i_price = rng.Uniform(100, 10000) / 100.0;
    CopyStr(row.i_name, sizeof(row.i_name), rng.AString(14, 24));
    std::string data = rng.AString(26, 50);
    if (rng.Uniform(1, 10) == 1 && data.size() > 8) {
      data.replace(rng.Uniform(0, data.size() - 8), 8, "ORIGINAL");
    }
    CopyStr(row.i_data, sizeof(row.i_data), data);
    PDB_CHECK(IsOk(
        loader.txn()->Insert(item_, tpcc_keys::Item(i), AsView(row))));
  }

  for (int64_t w = 1; w <= config_.warehouses; ++w) {
    WarehouseRow wr{};
    wr.w_id = static_cast<int32_t>(w);
    wr.w_tax = rng.Uniform(0, 2000) / 10000.0;
    wr.w_ytd = 300000.0;
    CopyStr(wr.w_name, sizeof(wr.w_name), rng.AString(6, 10));
    CopyStr(wr.w_street_1, sizeof(wr.w_street_1), rng.AString(10, 20));
    CopyStr(wr.w_street_2, sizeof(wr.w_street_2), rng.AString(10, 20));
    CopyStr(wr.w_city, sizeof(wr.w_city), rng.AString(10, 20));
    CopyStr(wr.w_state, sizeof(wr.w_state), rng.AString(2, 2));
    CopyStr(wr.w_zip, sizeof(wr.w_zip), "123456789");
    PDB_CHECK(IsOk(loader.txn()->Insert(warehouse_, tpcc_keys::Warehouse(w),
                                        AsView(wr))));

    // STOCK.
    for (int64_t i = 1; i <= config_.items; ++i) {
      StockRow sr{};
      sr.s_i_id = static_cast<int32_t>(i);
      sr.s_w_id = static_cast<int32_t>(w);
      sr.s_quantity = static_cast<int32_t>(rng.Uniform(10, 100));
      for (auto& dist : sr.s_dist) {
        CopyStr(dist, sizeof(sr.s_dist[0]), rng.AString(24, 24));
      }
      CopyStr(sr.s_data, sizeof(sr.s_data), rng.AString(26, 50));
      PDB_CHECK(IsOk(loader.txn()->Insert(stock_, tpcc_keys::Stock(w, i),
                                          AsView(sr))));
    }

    for (int64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      DistrictRow dr{};
      dr.d_id = static_cast<int32_t>(d);
      dr.d_w_id = static_cast<int32_t>(w);
      dr.d_next_o_id = config_.initial_orders_per_district + 1;
      dr.d_tax = rng.Uniform(0, 2000) / 10000.0;
      dr.d_ytd = 30000.0;
      CopyStr(dr.d_name, sizeof(dr.d_name), rng.AString(6, 10));
      CopyStr(dr.d_city, sizeof(dr.d_city), rng.AString(10, 20));
      PDB_CHECK(IsOk(loader.txn()->Insert(district_, tpcc_keys::District(w, d),
                                          AsView(dr))));

      // CUSTOMER (+ name index) and 1 HISTORY row each.
      for (int64_t c = 1; c <= config_.customers_per_district; ++c) {
        CustomerRow cr{};
        cr.c_id = static_cast<int32_t>(c);
        cr.c_d_id = static_cast<int32_t>(d);
        cr.c_w_id = static_cast<int32_t>(w);
        cr.c_credit_lim = 50000.0;
        cr.c_discount = rng.Uniform(0, 5000) / 10000.0;
        cr.c_balance = -10.0;
        cr.c_ytd_payment = 10.0;
        cr.c_payment_cnt = 1;
        int64_t name_num = c <= 1000 ? c - 1 : rng.NURand(255, 0, 999);
        MakeLastName(name_num, cr.c_last);
        CopyStr(cr.c_first, sizeof(cr.c_first), rng.AString(8, 16));
        std::strcpy(cr.c_middle, "OE");
        std::strcpy(cr.c_credit, rng.Uniform(1, 10) == 1 ? "BC" : "GC");
        CopyStr(cr.c_data, sizeof(cr.c_data), rng.AString(100, 250));
        Transaction::SecondaryEntry sec{
            customer_name_idx_,
            tpcc_keys::CustomerName(w, d, NameHash(cr.c_last), c)};
        PDB_CHECK(IsOk(loader.txn()->InsertWithSecondaries(
            customer_, tpcc_keys::Customer(w, d, c), AsView(cr), &sec, 1)));

        HistoryRow hr{};
        hr.h_c_id = static_cast<int32_t>(c);
        hr.h_c_d_id = hr.h_d_id = static_cast<int32_t>(d);
        hr.h_c_w_id = hr.h_w_id = static_cast<int32_t>(w);
        hr.h_amount = 10.0;
        PDB_CHECK(IsOk(loader.txn()->Insert(
            history_, history_key_.fetch_add(1), AsView(hr))));
      }

      // ORDER / ORDER-LINE / NEW-ORDER: customers permuted over orders;
      // the last third of orders are open (in NEW-ORDER).
      std::vector<int32_t> cperm(config_.customers_per_district);
      for (size_t i = 0; i < cperm.size(); ++i) {
        cperm[i] = static_cast<int32_t>(i + 1);
      }
      for (size_t i = cperm.size(); i > 1; --i) {
        std::swap(cperm[i - 1], cperm[rng.Uniform(0, i - 1)]);
      }
      int64_t num_orders =
          std::min<int64_t>(config_.initial_orders_per_district,
                            config_.customers_per_district);
      for (int64_t o = 1; o <= num_orders; ++o) {
        OrderRow orow{};
        orow.o_id = static_cast<int32_t>(o);
        orow.o_d_id = static_cast<int32_t>(d);
        orow.o_w_id = static_cast<int32_t>(w);
        orow.o_c_id = cperm[o - 1];
        bool open = o > num_orders * 7 / 10;
        orow.o_carrier_id =
            open ? 0 : static_cast<int32_t>(rng.Uniform(1, 10));
        orow.o_ol_cnt = static_cast<int32_t>(rng.Uniform(5, 15));
        orow.o_all_local = 1;
        Transaction::SecondaryEntry sec{
            order_cust_idx_,
            tpcc_keys::OrderByCustomer(w, d, orow.o_c_id, o)};
        PDB_CHECK(IsOk(loader.txn()->InsertWithSecondaries(
            order_, tpcc_keys::Order(w, d, o), AsView(orow), &sec, 1)));

        for (int64_t ol = 1; ol <= orow.o_ol_cnt; ++ol) {
          OrderLineRow olr{};
          olr.ol_o_id = static_cast<int32_t>(o);
          olr.ol_d_id = static_cast<int32_t>(d);
          olr.ol_w_id = static_cast<int32_t>(w);
          olr.ol_number = static_cast<int32_t>(ol);
          olr.ol_i_id = static_cast<int32_t>(rng.Uniform(1, config_.items));
          olr.ol_supply_w_id = static_cast<int32_t>(w);
          olr.ol_quantity = 5;
          olr.ol_amount = open ? rng.Uniform(1, 999999) / 100.0 : 0.0;
          olr.ol_delivery_d = open ? 0 : 1;
          PDB_CHECK(IsOk(
              loader.txn()->Insert(order_line_,
                                   tpcc_keys::OrderLine(w, d, o, ol),
                                   AsView(olr))));
        }
        if (open) {
          NewOrderRow nr{static_cast<int32_t>(o), static_cast<int32_t>(d),
                         static_cast<int32_t>(w)};
          PDB_CHECK(IsOk(loader.txn()->Insert(
              new_order_, tpcc_keys::NewOrder(w, d, o), AsView(nr))));
        }
      }
    }
  }
}

sched::Request TpccWorkload::GenNewOrder(FastRandom& rng) const {
  sched::Request r;
  r.type = kNewOrder;
  r.params[0] = static_cast<uint64_t>(PickWarehouse(rng));
  r.params[1] = rng.Next();
  return r;
}

sched::Request TpccWorkload::GenPayment(FastRandom& rng) const {
  sched::Request r;
  r.type = kPayment;
  r.params[0] = static_cast<uint64_t>(PickWarehouse(rng));
  r.params[1] = rng.Next();
  return r;
}

sched::Request TpccWorkload::GenHighPriority(FastRandom& rng) const {
  return rng.Uniform(0, 1) == 0 ? GenNewOrder(rng) : GenPayment(rng);
}

sched::Request TpccWorkload::GenStandardMix(FastRandom& rng) const {
  sched::Request r;
  r.params[0] = static_cast<uint64_t>(PickWarehouse(rng));
  r.params[1] = rng.Next();
  int64_t roll = rng.Uniform(1, 100);
  if (roll <= 45) {
    r.type = kNewOrder;
  } else if (roll <= 88) {
    r.type = kPayment;
  } else if (roll <= 92) {
    r.type = kOrderStatus;
  } else if (roll <= 96) {
    r.type = kDelivery;
  } else {
    r.type = kStockLevel;
  }
  return r;
}

Rc TpccWorkload::Execute(const sched::Request& req, int /*worker_id*/) {
  uint64_t w = req.params[0];
  uint64_t seed = req.params[1];
  // Retry transient write-write conflicts a bounded number of times; TPC-C
  // mandates resubmission of aborted transactions.
  Rc rc = Rc::kError;
  for (int attempt = 0; attempt < 5; ++attempt) {
    switch (req.type) {
      case kNewOrder:
        rc = RunNewOrder(w, seed);
        break;
      case kPayment:
        rc = RunPayment(w, seed);
        break;
      case kOrderStatus:
        rc = RunOrderStatus(w, seed);
        break;
      case kDelivery:
        rc = RunDelivery(w, seed);
        break;
      case kStockLevel:
        rc = RunStockLevel(w, seed);
        break;
      default:
        PDB_CHECK_MSG(false, "unknown TPC-C txn type");
    }
    if (rc != Rc::kAbortWriteConflict && rc != Rc::kAbortSerialization) break;
  }
  return rc;
}

}  // namespace preemptdb::workload
