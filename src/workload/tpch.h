// TPC-H subset for query Q2 (minimum-cost supplier), the paper's
// long-running low-priority transaction (§6.1): REGION, NATION, SUPPLIER,
// PART, PARTSUPP generated dbgen-style at a configurable scale.
//
// Q2 is implemented as a long read-only transaction with the same structure
// the paper exploits: an outer scan over PART with a nested query block per
// matching part that probes PARTSUPP/SUPPLIER/NATION/REGION for the minimum
// supply cost. The handcrafted-cooperative variant of Fig. 11 yields at
// nested-block boundaries via engine::hooks::OnQ2Block().
#ifndef PREEMPTDB_WORKLOAD_TPCH_H_
#define PREEMPTDB_WORKLOAD_TPCH_H_

#include <cstdint>
#include <vector>

#include "engine/engine.h"
#include "sched/request.h"
#include "util/random.h"

namespace preemptdb::workload {

struct RegionRow {
  int32_t r_regionkey;
  char r_name[13];
};

struct NationRow {
  int32_t n_nationkey;
  int32_t n_regionkey;
  char n_name[16];
};

struct SupplierRow {
  int32_t s_suppkey;
  int32_t s_nationkey;
  double s_acctbal;
  char s_name[26];
  char s_address[41];
  char s_phone[16];
};

struct PartRow {
  int32_t p_partkey;
  int32_t p_size;  // 1..50
  double p_retailprice;
  char p_name[56];
  char p_mfgr[26];
  char p_brand[11];
  char p_type[26];  // "<syllable1> <syllable2> <syllable3>"
};

struct PartSuppRow {
  int32_t ps_partkey;
  int32_t ps_suppkey;
  int32_t ps_availqty;
  double ps_supplycost;
};

namespace tpch_keys {

inline uint64_t Region(int64_t r) { return static_cast<uint64_t>(r); }
inline uint64_t Nation(int64_t n) { return static_cast<uint64_t>(n); }
inline uint64_t Supplier(int64_t s) { return static_cast<uint64_t>(s); }
inline uint64_t Part(int64_t p) { return static_cast<uint64_t>(p); }
// 4 suppliers per part, slot in [0, 4).
inline uint64_t PartSupp(int64_t p, int64_t slot) {
  return (static_cast<uint64_t>(p) << 2) | static_cast<uint64_t>(slot);
}

}  // namespace tpch_keys

struct TpchConfig {
  // Cardinalities follow TPC-H ratios at a reduced scale tuned so Q2 runs
  // for on the order of 100 ms on a small machine — "long" relative to the
  // microsecond-scale TPC-C transactions, as in the paper.
  int parts = 20000;
  int suppliers = 1000;
  int nations = 25;
  int regions = 5;

  static TpchConfig Small() {
    TpchConfig c;
    c.parts = 500;
    c.suppliers = 50;
    return c;
  }
};

struct Q2Result {
  int32_t part = 0;
  int32_t supplier = 0;
  double supplycost = 0;
  double acctbal = 0;
};

class TpchWorkload {
 public:
  // Type id for Q2 requests; distinct from the TPC-C ids (0..4).
  static constexpr uint32_t kQ2 = 5;

  TpchWorkload(engine::Engine* engine, TpchConfig config);
  PDB_DISALLOW_COPY_AND_ASSIGN(TpchWorkload);

  void Load();

  sched::Request GenQ2(FastRandom& rng) const;

  Rc Execute(const sched::Request& req, int worker_id);

  // Single-attempt Q2 body; results (top 100 by acctbal) in `out` if
  // non-null. `params`: [0] size (1..50), [1] type syllable index, [2]
  // region key.
  Rc RunQ2(int64_t size, int64_t type_idx, int64_t region,
           std::vector<Q2Result>* out);

  // Reference implementation over direct table scans, bypassing the nested
  // structure — used by tests to validate RunQ2.
  std::vector<Q2Result> RunQ2Reference(int64_t size, int64_t type_idx,
                                       int64_t region);

  const TpchConfig& config() const { return config_; }
  engine::Table* part() { return part_; }
  engine::Table* supplier() { return supplier_; }
  engine::Table* partsupp() { return partsupp_; }
  engine::Table* nation() { return nation_; }

  // Number of type syllables selectable as Q2's "%TYPE" predicate.
  static constexpr int kNumTypeSyllables = 5;

 private:
  bool SupplierInRegion(engine::Transaction* txn, int64_t suppkey,
                        int64_t region, double* acctbal);

  engine::Engine* const engine_;
  const TpchConfig config_;

  engine::Table* region_ = nullptr;
  engine::Table* nation_ = nullptr;
  engine::Table* supplier_ = nullptr;
  engine::Table* part_ = nullptr;
  engine::Table* partsupp_ = nullptr;
};

}  // namespace preemptdb::workload

#endif  // PREEMPTDB_WORKLOAD_TPCH_H_
