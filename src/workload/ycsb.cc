#include "workload/ycsb.h"

#include <string>

#include "uintr/uintr.h"

namespace preemptdb::workload {

namespace {
using engine::Transaction;

std::string MakeValue(FastRandom& rng, uint32_t bytes) {
  return rng.AString(static_cast<int>(bytes), static_cast<int>(bytes));
}
}  // namespace

const char* YcsbMixName(YcsbMix mix) {
  switch (mix) {
    case YcsbMix::kA:
      return "A";
    case YcsbMix::kB:
      return "B";
    case YcsbMix::kC:
      return "C";
    case YcsbMix::kE:
      return "E";
    case YcsbMix::kF:
      return "F";
  }
  return "?";
}

YcsbWorkload::YcsbWorkload(engine::Engine* engine, YcsbConfig config)
    : engine_(engine),
      config_(config),
      insert_cursor_(config.record_count) {
  if (config_.zipf_theta > 0) {
    zipf_ = std::make_unique<ZipfianGenerator>(config_.record_count,
                                               config_.zipf_theta, 0x5eedull);
  }
}

void YcsbWorkload::Load() {
  table_ = engine_->CreateTable("usertable");
  FastRandom rng(0xabcdu);
  Transaction* txn = engine_->Begin();
  for (uint64_t k = 0; k < config_.record_count; ++k) {
    PDB_CHECK(IsOk(txn->Insert(table_, k,
                               MakeValue(rng, config_.value_bytes))));
    if (k % 2000 == 1999) {
      PDB_CHECK(IsOk(txn->Commit()));
      txn = engine_->Begin();
    }
  }
  PDB_CHECK(IsOk(txn->Commit()));
}

uint64_t YcsbWorkload::PickKey(FastRandom& rng) const {
  if (zipf_ == nullptr) {
    return rng.UniformU64(0, config_.record_count - 1);
  }
  // The Zipfian generator is shared behind a spin latch. Taking a latch on
  // a preemptible path is exactly the paper's §4.4 deadlock scenario: a
  // preempted holder would dead-spin the preemptive context of its own
  // worker. Wrap it in a non-preemptible region, like every other latch in
  // the system.
  uintr::NonPreemptibleRegion guard;
  SpinLatchGuard g(zipf_latch_);
  return zipf_->Next();
}

sched::Request YcsbWorkload::GenTxn(FastRandom& rng) const {
  sched::Request r;
  r.type = kYcsbTxn;
  r.params[0] = rng.Next();
  return r;
}

sched::Request YcsbWorkload::GenScanAll(FastRandom& rng) const {
  sched::Request r;
  r.type = kYcsbScanAll;
  r.params[0] = rng.Next();
  return r;
}

Rc YcsbWorkload::Execute(const sched::Request& req, int /*worker_id*/) {
  Rc rc = Rc::kError;
  for (int attempt = 0; attempt < 5; ++attempt) {
    rc = req.type == kYcsbScanAll ? RunScanAll() : RunTxn(req.params[0]);
    if (rc != Rc::kAbortWriteConflict && rc != Rc::kAbortSerialization) break;
  }
  return rc;
}

Rc YcsbWorkload::RunTxn(uint64_t seed) {
  FastRandom rng(seed);
  Transaction* txn = engine_->Begin();
  Slice s;
  for (int op = 0; op < config_.ops_per_txn; ++op) {
    int64_t roll = rng.Uniform(1, 100);
    uint64_t key = PickKey(rng);
    enum { kRead, kUpdate, kInsert, kScan, kRmw } kind = kRead;
    switch (config_.mix) {
      case YcsbMix::kA:
        kind = roll <= 50 ? kRead : kUpdate;
        break;
      case YcsbMix::kB:
        kind = roll <= 95 ? kRead : kUpdate;
        break;
      case YcsbMix::kC:
        kind = kRead;
        break;
      case YcsbMix::kE:
        kind = roll <= 95 ? kScan : kInsert;
        break;
      case YcsbMix::kF:
        kind = roll <= 50 ? kRead : kRmw;
        break;
    }
    switch (kind) {
      case kRead: {
        Rc rc = txn->Read(table_, key, &s);
        if (!IsOk(rc) && rc != Rc::kNotFound) {
          txn->Abort();
          return rc;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case kUpdate: {
        Rc rc = txn->Update(table_, key, MakeValue(rng, config_.value_bytes));
        if (!IsOk(rc) && rc != Rc::kNotFound) {
          txn->Abort();
          return rc;
        }
        updates.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case kInsert: {
        uint64_t new_key =
            insert_cursor_.fetch_add(1, std::memory_order_relaxed);
        Rc rc =
            txn->Insert(table_, new_key, MakeValue(rng, config_.value_bytes));
        if (!IsOk(rc) && rc != Rc::kKeyExists) {
          txn->Abort();
          return rc;
        }
        inserts.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case kScan: {
        int len = static_cast<int>(rng.Uniform(1, config_.max_scan_len));
        int seen = 0;
        txn->Scan(table_, key, UINT64_MAX, [&](index::Key, Slice) {
          return ++seen < len;
        });
        scans.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case kRmw: {
        Rc rc = txn->Read(table_, key, &s);
        if (IsOk(rc)) {
          std::string v = s.ToString();
          if (!v.empty()) v[0] = static_cast<char>('A' + (v[0] + 1) % 26);
          rc = txn->Update(table_, key, v);
          if (!IsOk(rc)) {
            txn->Abort();
            return rc;
          }
        }
        rmws.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  return txn->Commit();
}

Rc YcsbWorkload::RunScanAll() {
  Transaction* txn = engine_->Begin();
  uint64_t checksum = 0;
  txn->Scan(table_, 0, UINT64_MAX, [&](index::Key k, Slice v) {
    checksum += k + v.size;
    return true;
  });
  volatile uint64_t sink = checksum;
  (void)sink;
  return txn->Commit();
}

}  // namespace preemptdb::workload
