#include "workload/tpch.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "engine/hooks.h"

namespace preemptdb::workload {

namespace {

using engine::Transaction;

template <typename Row>
std::string_view AsView(const Row& row) {
  return std::string_view(reinterpret_cast<const char*>(&row), sizeof(Row));
}

const char* kTypeSyllable3[TpchWorkload::kNumTypeSyllables] = {
    "TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

constexpr int kSuppliersPerPart = 4;

}  // namespace

TpchWorkload::TpchWorkload(engine::Engine* engine, TpchConfig config)
    : engine_(engine), config_(config) {}

void TpchWorkload::Load() {
  region_ = engine_->CreateTable("region");
  nation_ = engine_->CreateTable("nation");
  supplier_ = engine_->CreateTable("supplier");
  part_ = engine_->CreateTable("part");
  partsupp_ = engine_->CreateTable("partsupp");

  FastRandom rng(0x7c7c7cull);
  Transaction* txn = engine_->Begin();
  int ops = 0;
  auto batch = [&] {
    if (++ops % 2000 == 0) {
      PDB_CHECK(IsOk(txn->Commit()));
      txn = engine_->Begin();
    }
  };

  static const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                       "MIDDLE EAST"};
  for (int64_t r = 0; r < config_.regions; ++r) {
    RegionRow row{};
    row.r_regionkey = static_cast<int32_t>(r);
    std::snprintf(row.r_name, sizeof(row.r_name), "%s",
                  kRegionNames[r % 5]);
    PDB_CHECK(IsOk(txn->Insert(region_, tpch_keys::Region(r), AsView(row))));
    batch();
  }

  for (int64_t n = 0; n < config_.nations; ++n) {
    NationRow row{};
    row.n_nationkey = static_cast<int32_t>(n);
    row.n_regionkey = static_cast<int32_t>(n % config_.regions);
    std::snprintf(row.n_name, sizeof(row.n_name), "NATION%02d",
                  static_cast<int>(n % 100));
    PDB_CHECK(IsOk(txn->Insert(nation_, tpch_keys::Nation(n), AsView(row))));
    batch();
  }

  for (int64_t s = 1; s <= config_.suppliers; ++s) {
    SupplierRow row{};
    row.s_suppkey = static_cast<int32_t>(s);
    row.s_nationkey = static_cast<int32_t>(rng.Uniform(0, config_.nations - 1));
    row.s_acctbal = rng.Uniform(-99999, 999999) / 100.0;
    std::snprintf(row.s_name, sizeof(row.s_name), "Supplier#%09ld",
                  static_cast<long>(s));
    PDB_CHECK(
        IsOk(txn->Insert(supplier_, tpch_keys::Supplier(s), AsView(row))));
    batch();
  }

  for (int64_t p = 1; p <= config_.parts; ++p) {
    PartRow row{};
    row.p_partkey = static_cast<int32_t>(p);
    row.p_size = static_cast<int32_t>(rng.Uniform(1, 50));
    row.p_retailprice = 900.0 + p % 1000;
    std::snprintf(row.p_type, sizeof(row.p_type), "%s %s %s",
                  (p % 2) != 0 ? "STANDARD" : "LARGE",
                  (p % 3) != 0 ? "BURNISHED" : "ANODIZED",
                  kTypeSyllable3[rng.Uniform(0, kNumTypeSyllables - 1)]);
    std::snprintf(row.p_brand, sizeof(row.p_brand), "Brand#%ld%ld",
                  static_cast<long>(rng.Uniform(1, 5)),
                  static_cast<long>(rng.Uniform(1, 5)));
    PDB_CHECK(IsOk(txn->Insert(part_, tpch_keys::Part(p), AsView(row))));
    batch();

    for (int64_t slot = 0; slot < kSuppliersPerPart; ++slot) {
      PartSuppRow ps{};
      ps.ps_partkey = static_cast<int32_t>(p);
      // dbgen-style supplier spreading.
      ps.ps_suppkey = static_cast<int32_t>(
          (p + slot * (config_.suppliers / kSuppliersPerPart + 1)) %
              config_.suppliers +
          1);
      ps.ps_availqty = static_cast<int32_t>(rng.Uniform(1, 9999));
      ps.ps_supplycost = rng.Uniform(100, 100000) / 100.0;
      PDB_CHECK(IsOk(txn->Insert(partsupp_, tpch_keys::PartSupp(p, slot),
                                 AsView(ps))));
      batch();
    }
  }
  PDB_CHECK(IsOk(txn->Commit()));
}

sched::Request TpchWorkload::GenQ2(FastRandom& rng) const {
  sched::Request r;
  r.type = kQ2;
  r.priority = sched::Priority::kLow;
  r.params[0] = rng.UniformU64(1, 50);                       // size
  r.params[1] = rng.UniformU64(0, kNumTypeSyllables - 1);    // type
  r.params[2] = rng.UniformU64(0, config_.regions - 1);      // region
  return r;
}

Rc TpchWorkload::Execute(const sched::Request& req, int /*worker_id*/) {
  PDB_CHECK(req.type == kQ2);
  return RunQ2(static_cast<int64_t>(req.params[0]),
               static_cast<int64_t>(req.params[1]),
               static_cast<int64_t>(req.params[2]), nullptr);
}

bool TpchWorkload::SupplierInRegion(Transaction* txn, int64_t suppkey,
                                    int64_t region, double* acctbal) {
  Slice s;
  if (!IsOk(txn->Read(supplier_, tpch_keys::Supplier(suppkey), &s))) {
    return false;
  }
  const SupplierRow sr = *s.As<SupplierRow>();
  if (!IsOk(txn->Read(nation_, tpch_keys::Nation(sr.s_nationkey), &s))) {
    return false;
  }
  if (s.As<NationRow>()->n_regionkey != region) return false;
  *acctbal = sr.s_acctbal;
  return true;
}

Rc TpchWorkload::RunQ2(int64_t size, int64_t type_idx, int64_t region,
                       std::vector<Q2Result>* out) {
  const char* type_suffix = kTypeSyllable3[type_idx % kNumTypeSyllables];
  Transaction* txn = engine_->Begin();
  std::vector<Q2Result> results;

  // Outer block: scan PART. A nested-loop plan evaluates the min-supplycost
  // subquery per scanned part (this is what makes Q2 the paper's
  // long-running transaction, and what makes the handcrafted variant's
  // "yield every 1000 nested query blocks" meaningful); the size/type
  // predicate then filters the joined rows.
  txn->Scan(part_, tpch_keys::Part(0), tpch_keys::Part(config_.parts),
            [&](index::Key, Slice payload) {
              const PartRow pr = *payload.As<PartRow>();

              // Nested query block: min supply cost among this part's
              // suppliers within the region.
              double min_cost = 0;
              Q2Result best{};
              bool found = false;
              for (int64_t slot = 0; slot < kSuppliersPerPart; ++slot) {
                Slice pss;
                if (!IsOk(txn->Read(partsupp_,
                                    tpch_keys::PartSupp(pr.p_partkey, slot),
                                    &pss))) {
                  continue;
                }
                const PartSuppRow ps = *pss.As<PartSuppRow>();
                double acctbal;
                if (!SupplierInRegion(txn, ps.ps_suppkey, region, &acctbal)) {
                  continue;
                }
                if (!found || ps.ps_supplycost < min_cost) {
                  found = true;
                  min_cost = ps.ps_supplycost;
                  best = Q2Result{pr.p_partkey, ps.ps_suppkey,
                                  ps.ps_supplycost, acctbal};
                }
              }
              // Handcrafted-cooperative yield point (Fig. 11): "right
              // outside the nested query block of Q2".
              engine::hooks::OnQ2Block();

              size_t tlen = std::strlen(pr.p_type);
              size_t slen = std::strlen(type_suffix);
              bool match =
                  pr.p_size == size && tlen >= slen &&
                  std::strcmp(pr.p_type + tlen - slen, type_suffix) == 0;
              if (match && found) results.push_back(best);
              return true;
            });

  // ORDER BY s_acctbal DESC LIMIT 100.
  std::sort(results.begin(), results.end(),
            [](const Q2Result& a, const Q2Result& b) {
              if (a.acctbal != b.acctbal) return a.acctbal > b.acctbal;
              return a.part < b.part;
            });
  if (results.size() > 100) results.resize(100);
  Rc rc = txn->Commit();
  if (out != nullptr) *out = std::move(results);
  return rc;
}

std::vector<Q2Result> TpchWorkload::RunQ2Reference(int64_t size,
                                                   int64_t type_idx,
                                                   int64_t region) {
  const char* type_suffix = kTypeSyllable3[type_idx % kNumTypeSyllables];
  Transaction* txn = engine_->Begin();
  std::vector<Q2Result> results;
  Slice s;
  for (int64_t p = 1; p <= config_.parts; ++p) {
    if (!IsOk(txn->Read(part_, tpch_keys::Part(p), &s))) continue;
    const PartRow pr = *s.As<PartRow>();
    size_t tlen = std::strlen(pr.p_type);
    size_t slen = std::strlen(type_suffix);
    if (pr.p_size != size || tlen < slen ||
        std::strcmp(pr.p_type + tlen - slen, type_suffix) != 0) {
      continue;
    }
    bool found = false;
    Q2Result best{};
    for (int64_t slot = 0; slot < kSuppliersPerPart; ++slot) {
      if (!IsOk(txn->Read(partsupp_, tpch_keys::PartSupp(p, slot), &s))) {
        continue;
      }
      const PartSuppRow ps = *s.As<PartSuppRow>();
      double acctbal;
      if (!SupplierInRegion(txn, ps.ps_suppkey, region, &acctbal)) continue;
      if (!found || ps.ps_supplycost < best.supplycost) {
        found = true;
        best = Q2Result{pr.p_partkey, ps.ps_suppkey, ps.ps_supplycost,
                        acctbal};
      }
    }
    if (found) results.push_back(best);
  }
  PDB_CHECK(IsOk(txn->Commit()));
  std::sort(results.begin(), results.end(),
            [](const Q2Result& a, const Q2Result& b) {
              if (a.acctbal != b.acctbal) return a.acctbal > b.acctbal;
              return a.part < b.part;
            });
  if (results.size() > 100) results.resize(100);
  return results;
}

}  // namespace preemptdb::workload
