// TPC-C workload (TPC-C v5.11) over the PreemptDB engine: full schema,
// loader, and the five transaction profiles. NewOrder and Payment serve as
// the short high-priority transactions of the paper's mixed workload; the
// full five-transaction mix drives the Fig. 8 overhead experiment.
//
// Like the paper (and ERMIA), the driver invokes the storage engine's C++
// interfaces directly — no SQL, networking, or optimizer — so measurements
// isolate scheduling behaviour.
#ifndef PREEMPTDB_WORKLOAD_TPCC_H_
#define PREEMPTDB_WORKLOAD_TPCC_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>

#include "engine/engine.h"
#include "sched/request.h"
#include "util/random.h"

namespace preemptdb::workload {

// ---------------------------------------------------------------------------
// Row layouts (fixed-size PODs, memcpy-serialized).
// ---------------------------------------------------------------------------

struct WarehouseRow {
  int32_t w_id;
  double w_tax;
  double w_ytd;
  char w_name[11];
  char w_street_1[21];
  char w_street_2[21];
  char w_city[21];
  char w_state[3];
  char w_zip[10];
};

struct DistrictRow {
  int32_t d_id;
  int32_t d_w_id;
  int32_t d_next_o_id;
  double d_tax;
  double d_ytd;
  char d_name[11];
  char d_street_1[21];
  char d_street_2[21];
  char d_city[21];
  char d_state[3];
  char d_zip[10];
};

struct CustomerRow {
  int32_t c_id;
  int32_t c_d_id;
  int32_t c_w_id;
  double c_credit_lim;
  double c_discount;
  double c_balance;
  double c_ytd_payment;
  int32_t c_payment_cnt;
  int32_t c_delivery_cnt;
  uint64_t c_since;
  char c_first[17];
  char c_middle[3];
  char c_last[17];
  char c_street_1[21];
  char c_street_2[21];
  char c_city[21];
  char c_state[3];
  char c_zip[10];
  char c_phone[17];
  char c_credit[3];
  char c_data[251];
};

struct HistoryRow {
  int32_t h_c_id;
  int32_t h_c_d_id;
  int32_t h_c_w_id;
  int32_t h_d_id;
  int32_t h_w_id;
  uint64_t h_date;
  double h_amount;
  char h_data[25];
};

struct NewOrderRow {
  int32_t no_o_id;
  int32_t no_d_id;
  int32_t no_w_id;
};

struct OrderRow {
  int32_t o_id;
  int32_t o_d_id;
  int32_t o_w_id;
  int32_t o_c_id;
  int32_t o_carrier_id;  // 0 = null
  int32_t o_ol_cnt;
  int32_t o_all_local;
  uint64_t o_entry_d;
};

struct OrderLineRow {
  int32_t ol_o_id;
  int32_t ol_d_id;
  int32_t ol_w_id;
  int32_t ol_number;
  int32_t ol_i_id;
  int32_t ol_supply_w_id;
  uint64_t ol_delivery_d;  // 0 = null
  int32_t ol_quantity;
  double ol_amount;
  char ol_dist_info[25];
};

struct ItemRow {
  int32_t i_id;
  int32_t i_im_id;
  double i_price;
  char i_name[25];
  char i_data[51];
};

struct StockRow {
  int32_t s_i_id;
  int32_t s_w_id;
  int32_t s_quantity;
  int32_t s_ytd;
  int32_t s_order_cnt;
  int32_t s_remote_cnt;
  char s_dist[10][25];
  char s_data[51];
};

// ---------------------------------------------------------------------------
// Key encodings. Bit budget: w 10, d 4, c 17, o 28, ol 5, i 20 bits —
// asserted by the encoders.
// ---------------------------------------------------------------------------

namespace tpcc_keys {

inline uint64_t Warehouse(int64_t w) { return static_cast<uint64_t>(w); }

inline uint64_t District(int64_t w, int64_t d) {
  PDB_DCHECK(w < (1 << 10) && d <= 10);
  return (static_cast<uint64_t>(w) << 4) | static_cast<uint64_t>(d);
}

inline uint64_t Customer(int64_t w, int64_t d, int64_t c) {
  PDB_DCHECK(c < (1 << 17));
  return (static_cast<uint64_t>(w) << 21) | (static_cast<uint64_t>(d) << 17) |
         static_cast<uint64_t>(c);
}

// Secondary: customers grouped by (w, d, lastname-hash) for the 60%-by-name
// Payment/OrderStatus path; the c_id suffix disambiguates collisions.
inline uint64_t CustomerName(int64_t w, int64_t d, uint64_t name_hash,
                             int64_t c) {
  return (static_cast<uint64_t>(w) << 41) | (static_cast<uint64_t>(d) << 37) |
         ((name_hash & 0xFFFFF) << 17) | static_cast<uint64_t>(c);
}

inline uint64_t Order(int64_t w, int64_t d, int64_t o) {
  PDB_DCHECK(o < (1 << 28));
  return (static_cast<uint64_t>(w) << 32) | (static_cast<uint64_t>(d) << 28) |
         static_cast<uint64_t>(o);
}

// Secondary: orders by customer, ascending o_id (OrderStatus reads the max).
inline uint64_t OrderByCustomer(int64_t w, int64_t d, int64_t c, int64_t o) {
  return (static_cast<uint64_t>(w) << 49) | (static_cast<uint64_t>(d) << 45) |
         (static_cast<uint64_t>(c) << 28) | static_cast<uint64_t>(o);
}

inline uint64_t NewOrder(int64_t w, int64_t d, int64_t o) {
  return Order(w, d, o);
}

inline uint64_t OrderLine(int64_t w, int64_t d, int64_t o, int64_t ol) {
  PDB_DCHECK(ol < (1 << 5));
  return (static_cast<uint64_t>(w) << 37) | (static_cast<uint64_t>(d) << 33) |
         (static_cast<uint64_t>(o) << 5) | static_cast<uint64_t>(ol);
}

inline uint64_t Item(int64_t i) { return static_cast<uint64_t>(i); }

inline uint64_t Stock(int64_t w, int64_t i) {
  PDB_DCHECK(i < (1 << 20));
  return (static_cast<uint64_t>(w) << 20) | static_cast<uint64_t>(i);
}

// FNV-1a over the last name, reduced to 20 bits.
inline uint64_t NameHash(const char* last) {
  uint64_t h = 1469598103934665603ull;
  for (const char* p = last; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 1099511628211ull;
  }
  return h & 0xFFFFF;
}

}  // namespace tpcc_keys

// ---------------------------------------------------------------------------
// Workload driver.
// ---------------------------------------------------------------------------

struct TpccConfig {
  int warehouses = 4;
  int districts_per_warehouse = 10;
  int customers_per_district = 3000;
  int initial_orders_per_district = 3000;
  int items = 100000;
  // Per spec 2.4.1.1: 15% of Payment/NewOrder touch a remote warehouse.
  int remote_pct = 15;

  // Scaled-down profile for unit tests.
  static TpccConfig Small() {
    TpccConfig c;
    c.warehouses = 2;
    c.customers_per_district = 60;
    c.initial_orders_per_district = 60;
    c.items = 1000;
    return c;
  }
}
;

class TpccWorkload {
 public:
  enum TxnType : uint32_t {
    kNewOrder = 0,
    kPayment = 1,
    kOrderStatus = 2,
    kDelivery = 3,
    kStockLevel = 4,
  };

  TpccWorkload(engine::Engine* engine, TpccConfig config);
  PDB_DISALLOW_COPY_AND_ASSIGN(TpccWorkload);

  // Creates tables/indexes and populates them per the spec's cardinalities.
  void Load();

  // --- Request generation (called on the scheduling thread) ---
  sched::Request GenNewOrder(FastRandom& rng) const;
  sched::Request GenPayment(FastRandom& rng) const;
  // NewOrder/Payment 50/50: the paper's high-priority stream.
  sched::Request GenHighPriority(FastRandom& rng) const;
  // Standard 45/43/4/4/4 five-transaction mix (Fig. 8).
  sched::Request GenStandardMix(FastRandom& rng) const;

  // --- Execution (called on workers; retries write conflicts) ---
  Rc Execute(const sched::Request& req, int worker_id);

  // Transaction bodies (single attempt; visible for tests).
  Rc RunNewOrder(uint64_t w, uint64_t seed);
  Rc RunPayment(uint64_t w, uint64_t seed);
  Rc RunOrderStatus(uint64_t w, uint64_t seed);
  Rc RunDelivery(uint64_t w, uint64_t seed);
  Rc RunStockLevel(uint64_t w, uint64_t seed);

  // Consistency checks (TPC-C §3.3.2.1/.2-ish invariants); abort on failure.
  // Returns the number of rows verified.
  uint64_t CheckConsistency();

  // Resolves a customer by last name: middle row ordered by first name
  // (spec 2.5.2.2). Returns false if no customer matches. Public for tests.
  bool CustomerByName(engine::Transaction* txn, int64_t w, int64_t d,
                      const char* last, CustomerRow* out);

  const TpccConfig& config() const { return config_; }
  engine::Engine* engine() { return engine_; }

  engine::Table* warehouse() { return warehouse_; }
  engine::Table* district() { return district_; }
  engine::Table* customer() { return customer_; }
  engine::Table* history() { return history_; }
  engine::Table* new_order() { return new_order_; }
  engine::Table* order() { return order_; }
  engine::Table* order_line() { return order_line_; }
  engine::Table* item() { return item_; }
  engine::Table* stock() { return stock_; }

 private:
  int64_t PickWarehouse(FastRandom& rng) const {
    return rng.Uniform(1, config_.warehouses);
  }

  // Last-name number for by-name lookups (spec: NURand(255, 0, 999)); capped
  // to names that actually exist when running scaled-down datasets with
  // fewer than 1000 customers per district.
  int64_t PickLastNameNum(FastRandom& rng) const {
    int64_t num = rng.NURand(255, 0, 999);
    int64_t max_name = std::min<int64_t>(999, config_.customers_per_district - 1);
    return num > max_name ? num % (max_name + 1) : num;
  }

  engine::Engine* const engine_;
  const TpccConfig config_;

  engine::Table* warehouse_ = nullptr;
  engine::Table* district_ = nullptr;
  engine::Table* customer_ = nullptr;
  engine::Table* history_ = nullptr;
  engine::Table* new_order_ = nullptr;
  engine::Table* order_ = nullptr;
  engine::Table* order_line_ = nullptr;
  engine::Table* item_ = nullptr;
  engine::Table* stock_ = nullptr;

  index::BTree* customer_name_idx_ = nullptr;
  index::BTree* order_cust_idx_ = nullptr;

  std::atomic<uint64_t> history_key_{0};
};

// Returns the TPC-C lastname for a number in [0, 999] (spec 4.3.2.3).
void MakeLastName(int64_t num, char* out /* >= 17 bytes */);

}  // namespace preemptdb::workload

#endif  // PREEMPTDB_WORKLOAD_TPCC_H_
