#include "repl/applier.h"

#include <cstring>

#include "engine/table.h"
#include "obs/metrics.h"
#include "util/crc32c.h"

namespace preemptdb::repl {

namespace {
obs::Counter g_apply_chunks("repl.apply.chunks");
obs::Counter g_apply_txns("repl.apply.txns");
obs::Counter g_apply_records("repl.apply.records");
obs::Counter g_apply_skipped("repl.apply.skipped_records");
}  // namespace

bool ValidateFrames(const char* data, size_t n, ChunkInfo* info) {
  *info = ChunkInfo{};
  size_t pos = 0;
  while (pos + sizeof(engine::SegmentHeader) <= n) {
    engine::SegmentHeader sh;
    std::memcpy(&sh, data + pos, sizeof(sh));
    if (sh.magic != engine::kSegmentMagic) break;
    if (pos + sizeof(sh) + sh.length > n) break;  // frame straddles the end
    uint32_t crc = util::Crc32c(0, data + pos, engine::kSegmentCrcPrefix);
    if (sh.length > 0) {
      crc = util::Crc32c(crc, data + pos + sizeof(sh), sh.length);
    }
    if (crc != sh.crc32c) break;
    ++info->frames;
    if (sh.commit_seq > info->max_seq) info->max_seq = sh.commit_seq;
    pos += sizeof(sh) + sh.length;
  }
  info->valid_bytes = pos;
  return pos == n;
}

uint64_t ScanValidLogEnd(const std::string& path, uint64_t from_off) {
  // Read-and-walk, same as recovery's segment loop; the file is cold (no
  // writer yet — this runs before the engine opens it).
  std::string log;
  {
    FILE* f = ::fopen(path.c_str(), "rb");
    if (f == nullptr) return from_off;
    char buf[1 << 16];
    size_t got;
    while ((got = ::fread(buf, 1, sizeof(buf), f)) > 0) log.append(buf, got);
    ::fclose(f);
  }
  if (log.size() <= from_off) return from_off;
  ChunkInfo info;
  ValidateFrames(log.data() + from_off, log.size() - from_off, &info);
  return from_off + info.valid_bytes;
}

bool Applier::ApplyChunk(const char* data, size_t n) {
  sched::StepContext sc;
  sched::StepResult sr;
  do {
    sr = ApplyChunkStep(data, n, UINT64_MAX, &sc);
    ++sc.steps;
  } while (sr.status != sched::StepStatus::kDone);
  return IsOk(sr.rc);
}

sched::StepResult Applier::ApplyChunkStep(const char* data, size_t n,
                                          uint64_t max_frames,
                                          sched::StepContext* sc) {
  // Suppress DDL re-logging for the duration of this step only (see
  // Engine::SetReplicaApply) — the flag must not leak across a yield into
  // whatever transaction runs in a sibling slot next.
  engine_->SetReplicaApply(true);
  size_t pos = static_cast<size_t>(sc->u64[0]);
  uint64_t frames = 0;
  bool ok = true;
  while (pos + sizeof(engine::SegmentHeader) <= n && frames < max_frames) {
    engine::SegmentHeader sh;
    std::memcpy(&sh, data + pos, sizeof(sh));
    if (sh.magic != engine::kSegmentMagic ||
        pos + sizeof(sh) + sh.length > n) {
      ok = false;
      break;
    }
    const char* rp = data + pos + sizeof(sh);
    size_t left = sh.length;
    auto& group = pending_[sh.commit_seq];
    while (left > 0) {
      if (left < sizeof(engine::LogRecordHeader)) {
        ok = false;
        break;
      }
      engine::LogRecordHeader rh;
      std::memcpy(&rh, rp, sizeof(rh));
      if (sizeof(rh) + rh.size > left) {
        ok = false;
        break;
      }
      group.push_back(
          PendingRecord{rh, std::string(rp + sizeof(rh), rh.size)});
      rp += sizeof(rh) + rh.size;
      left -= sizeof(rh) + rh.size;
    }
    if (!ok) break;
    if (sh.flags & engine::kSegTxnEnd) {
      for (const PendingRecord& r : group) {
        ApplyRecord(sh.commit_seq, r.hdr, r.payload.data());
      }
      pending_.erase(sh.commit_seq);
      // Publish the whole transaction at once: only now do new read
      // snapshots on this replica include it.
      if (sh.commit_seq > 0) {
        engine_->AdvanceTs(sh.commit_seq);
        applied_txns_.fetch_add(1, std::memory_order_relaxed);
        g_apply_txns.Add();
        uint64_t prev = applied_seq_.load(std::memory_order_relaxed);
        if (sh.commit_seq > prev) {
          applied_seq_.store(sh.commit_seq, std::memory_order_release);
        }
      }
    }
    pos += sizeof(sh) + sh.length;
    ++frames;
  }
  engine_->SetReplicaApply(false);
  sc->u64[0] = pos;
  if (ok && pos + sizeof(engine::SegmentHeader) <= n) {
    // Budget exhausted with frames left: warm the next header's line while
    // a sibling slot runs, then resume here.
    __builtin_prefetch(static_cast<const void*>(data + pos), 0, 3);
    ++sc->prefetches;
    return {sched::StepStatus::kYieldedVoluntary, Rc::kOk};
  }
  g_apply_chunks.Add();
  return {sched::StepStatus::kDone, ok && pos == n ? Rc::kOk : Rc::kError};
}

void Applier::ApplyRecord(uint64_t seq, const engine::LogRecordHeader& h,
                          const char* payload) {
  using engine::LogRecordKind;
  switch (static_cast<LogRecordKind>(h.kind)) {
    case LogRecordKind::kTableCreate: {
      if (engine_->TableAt(h.table_id) != nullptr) return;  // bootstrapped
      engine::Table* t = engine_->CreateTable(std::string(payload, h.size));
      PDB_CHECK(t->id() == h.table_id);
      return;
    }
    case LogRecordKind::kSecondaryCreate: {
      engine::Table* t = engine_->TableAt(h.table_id);
      if (t == nullptr) {
        skipped_records_.fetch_add(1, std::memory_order_relaxed);
        g_apply_skipped.Add();
        return;
      }
      if (h.sec_ordinal < t->SecondaryCount()) return;  // already there
      PDB_CHECK(h.sec_ordinal == t->SecondaryCount());
      t->CreateSecondaryIndex(std::string(payload, h.size));
      return;
    }
    case LogRecordKind::kData: {
      engine::Table* t = engine_->TableAt(h.table_id);
      if (t == nullptr) {
        skipped_records_.fetch_add(1, std::memory_order_relaxed);
        g_apply_skipped.Add();
        return;
      }
      t->oids().ReserveUpTo(h.oid + 1);
      engine::Version* head =
          t->Head(h.oid).load(std::memory_order_acquire);
      // Same dedup rule as recovery: an installed newer state wins; equal
      // timestamps re-apply (covers a later write of the same txn).
      if (head != nullptr &&
          head->clsn.load(std::memory_order_acquire) > seq) {
        return;
      }
      engine::Version* v = engine::Version::Make(nullptr, payload, h.size,
                                                 h.deleted != 0, head);
      v->clsn.store(seq, std::memory_order_release);
      // Release: a concurrent replica reader that loads this head must see
      // the version fully built (recovery can use relaxed; we cannot).
      t->Head(h.oid).store(v, std::memory_order_release);
      t->primary().Upsert(h.key, h.oid);
      applied_records_.fetch_add(1, std::memory_order_relaxed);
      g_apply_records.Add();
      return;
    }
    case LogRecordKind::kSecondaryUpsert: {
      engine::Table* t = engine_->TableAt(h.table_id);
      if (t == nullptr || h.sec_ordinal >= t->SecondaryCount()) {
        skipped_records_.fetch_add(1, std::memory_order_relaxed);
        g_apply_skipped.Add();
        return;
      }
      t->SecondaryAt(h.sec_ordinal)->Upsert(h.key, h.oid);
      applied_records_.fetch_add(1, std::memory_order_relaxed);
      g_apply_records.Add();
      return;
    }
  }
  skipped_records_.fetch_add(1, std::memory_order_relaxed);
  g_apply_skipped.Add();
}

}  // namespace preemptdb::repl
