#include "repl/replicator.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "engine/checkpoint.h"
#include "engine/log.h"
#include "fault/fault.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace preemptdb::repl {

namespace {

obs::Counter g_repl_reconnects("repl.follower.reconnects");
obs::Counter g_repl_appends("repl.follower.append_chunks");
obs::Counter g_repl_dup_chunks("repl.follower.duplicate_chunks");
obs::Counter g_repl_gap_resyncs("repl.follower.gap_resyncs");
obs::Counter g_repl_bootstraps("repl.follower.snapshot_bootstraps");

bool ReadExact(int fd, char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = ::read(fd, buf + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    off += static_cast<size_t>(r);
  }
  return true;
}

// Reads one RequestHeader-framed stream frame (kReplSnapshot / kReplAppend)
// off the raw socket. Client only parses *response* frames; the replication
// stream reuses request framing, so the follower reads it itself.
bool ReadStreamFrame(int fd, net::RequestHeader* h, std::string* payload) {
  uint8_t hdr[net::kRequestHeaderSize];
  if (!ReadExact(fd, reinterpret_cast<char*>(hdr), sizeof(hdr))) return false;
  if (!net::DecodeRequestHeader(hdr, h)) return false;
  if (h->payload_len > net::kMaxPayload) return false;
  payload->resize(h->payload_len);
  if (h->payload_len > 0 && !ReadExact(fd, payload->data(), h->payload_len)) {
    return false;
  }
  return true;
}

int64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return st.st_size;
}

// (Re)creates `path` extended with a hole to `size` and fsyncs it. Bytes in
// the hole are never read: they stand in for the primary's log prefix the
// shipped checkpoint already covers, keeping follower byte offsets equal to
// the primary's.
bool CreateSparseLog(const std::string& path, uint64_t size,
                     std::string* err) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    if (err != nullptr) *err = "create " + path + ": " + ::strerror(errno);
    return false;
  }
  bool ok = ::ftruncate(fd, static_cast<off_t>(size)) == 0 &&
            ::fsync(fd) == 0;
  if (!ok && err != nullptr) *err = "extend " + path + ": " + ::strerror(errno);
  ::close(fd);
  return ok;
}

bool DecodeHello(const std::string& payload, net::ReplHelloWire* out) {
  if (payload.size() < net::kReplHelloWireSize) return false;
  std::memcpy(out, payload.data(), net::kReplHelloWireSize);
  return true;
}

}  // namespace

bool Replicator::Bootstrap(std::string* err) {
  const std::string log_path = opts_.dir + "/redo.log";

  // Local frontier: manifest redo_off (bytes before it may be a bootstrap
  // hole) + the valid frame prefix past it, torn tail truncated — the same
  // repair local recovery performs, done eagerly so the offset we advertise
  // is exactly what the engine will recover to.
  uint64_t ck_seq = 0, ck_ts = 0, ck_redo = 0;
  std::string ck_file, merr;
  bool have_local_ckpt = engine::LoadCheckpointManifest(
      opts_.dir, &ck_seq, &ck_ts, &ck_redo, &ck_file, &merr);
  if (have_local_ckpt) {
    int64_t sz = FileSize(log_path);
    if (sz < static_cast<int64_t>(ck_redo)) {
      // Crash window from an earlier bootstrap: the checkpoint landed but
      // the sparse log did not. Heal it the same way it was meant to exist.
      if (!CreateSparseLog(log_path, ck_redo, err)) return false;
    }
  }
  uint64_t local_off =
      ScanValidLogEnd(log_path, have_local_ckpt ? ck_redo : 0);
  if (FileSize(log_path) > static_cast<int64_t>(local_off)) {
    if (::truncate(log_path.c_str(), static_cast<off_t>(local_off)) != 0) {
      if (err != nullptr) {
        *err = "truncate torn tail: " + std::string(::strerror(errno));
      }
      return false;
    }
  }

  net::Client c;
  if (!c.Connect(opts_.host, opts_.port, err)) return false;
  net::RequestHeader sub;
  sub.opcode = static_cast<uint8_t>(net::Op::kReplSubscribe);
  sub.params[0] = local_off;
  if (!c.Send(sub, {}, err)) return false;
  net::Client::Result res;
  if (!c.Recv(&res, err)) return false;
  net::ReplHelloWire hello;
  if (res.status != net::WireStatus::kOk || !DecodeHello(res.payload, &hello)) {
    if (err != nullptr) *err = "primary rejected subscription";
    return false;
  }

  if (hello.mode == net::kReplModeResume) {
    if (hello.start_off == local_off) return true;  // state already usable
    // The primary cannot serve our offset and has no checkpoint to reset us
    // with (it answered resume-from-0). Wipe and join its timeline from the
    // beginning of its log.
    ::unlink(log_path.c_str());
    if (have_local_ckpt) {
      ::unlink((opts_.dir + "/" + ck_file).c_str());
      ::unlink((opts_.dir + "/" +
                std::string(engine::Checkpointer::kManifestName))
                   .c_str());
    }
    return CreateSparseLog(log_path, hello.start_off, err);
  }

  // Snapshot bootstrap: download the checkpoint image.
  g_repl_bootstraps.Add();
  std::string image;
  image.reserve(hello.snapshot_bytes);
  while (image.size() < hello.snapshot_bytes) {
    net::RequestHeader fh;
    std::string chunk;
    if (!ReadStreamFrame(c.fd(), &fh, &chunk)) {
      if (err != nullptr) *err = "snapshot stream closed mid-transfer";
      return false;
    }
    if (static_cast<net::Op>(fh.opcode) != net::Op::kReplSnapshot ||
        fh.params[0] != image.size() ||
        fh.params[1] != hello.snapshot_bytes) {
      if (err != nullptr) *err = "snapshot stream out of order";
      return false;
    }
    image.append(chunk);
  }
  // The socket now carries kReplAppend frames we are not ready for (the
  // engine is not open yet); drop the connection, Start() resubscribes.
  c.Close();

  // Old redo bytes belong to whatever timeline the checkpoint replaces —
  // remove them before the new manifest can name an offset into them.
  ::unlink(log_path.c_str());
  uint64_t new_seq = 0, new_ts = 0, new_redo = 0;
  if (!engine::InstallCheckpointImage(opts_.dir, image, &new_seq, &new_ts,
                                      &new_redo, err)) {
    return false;
  }
  if (have_local_ckpt) {
    std::string old_path = opts_.dir + "/" + ck_file;
    if (ck_seq != new_seq) ::unlink(old_path.c_str());  // superseded image
  }
  return CreateSparseLog(log_path, hello.start_off, err);
}

void Replicator::Start(engine::Engine* engine) {
  if (thread_.joinable()) return;
  engine_ = engine;
  applier_ = std::make_unique<Applier>(engine);
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { RunApply(); });
}

void Replicator::Stop() {
  stopping_.store(true, std::memory_order_release);
  int fd = live_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
}

void Replicator::RunApply() {
  obs::RegisterThisThread("repl-apply");
  engine::LogManager& lm = engine_->log_manager();
  bool first_attempt = true;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!first_attempt) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      g_repl_reconnects.Add();
      for (int i = 0; i < 5 && !stopping_.load(std::memory_order_acquire);
           ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    first_attempt = false;

    net::Client c;
    std::string err;
    if (!c.Connect(opts_.host, opts_.port, &err)) continue;
    uint64_t local = lm.appended_bytes();
    net::RequestHeader sub;
    sub.opcode = static_cast<uint8_t>(net::Op::kReplSubscribe);
    sub.params[0] = local;
    sub.params[1] = applier_->applied_seq();
    net::Client::Result res;
    net::ReplHelloWire hello;
    if (!c.Send(sub, {}, &err) || !c.Recv(&res, &err)) continue;
    if (res.status != net::WireStatus::kOk ||
        !DecodeHello(res.payload, &hello)) {
      continue;
    }
    if (hello.mode != net::kReplModeResume || hello.start_off != local) {
      // The primary wants to reset us under a live engine — in-memory state
      // cannot be rolled back in place. Surface it and stop; a restart
      // re-runs Bootstrap, which installs the shipped checkpoint cleanly.
      rebuild_required_.store(true, std::memory_order_release);
      return;
    }
    primary_durable_seq_.store(hello.durable_seq, std::memory_order_relaxed);
    live_fd_.store(c.fd(), std::memory_order_release);
    connected_.store(true, std::memory_order_release);
    if (stopping_.load(std::memory_order_acquire)) {
      ::shutdown(c.fd(), SHUT_RDWR);
    }

    bool fatal = false;
    net::RequestHeader fh;
    std::string chunk;
    while (!stopping_.load(std::memory_order_acquire)) {
      if (!ReadStreamFrame(c.fd(), &fh, &chunk)) break;
      if (static_cast<net::Op>(fh.opcode) != net::Op::kReplAppend) continue;
      primary_durable_seq_.store(fh.params[1], std::memory_order_relaxed);
      if (PDB_UNLIKELY(fault::ShouldFire(fault::Point::kReplShip))) {
        uint64_t mode = fault::Param(fault::Point::kReplShip);
        if (mode == fault::kReplShipConnReset) break;
        if (mode == fault::kReplShipStall) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        if (mode == fault::kReplShipDrop) continue;  // → gap → resync
      }
      uint64_t off = fh.params[0];
      if (off + chunk.size() <= local) {
        g_repl_dup_chunks.Add();  // retransmit of bytes we already hold
      } else if (off != local) {
        g_repl_gap_resyncs.Add();  // lost chunk; resubscribe at our frontier
        break;
      } else {
        ChunkInfo info;
        if (!ValidateFrames(chunk.data(), chunk.size(), &info)) break;
        // Durability first, visibility second: a crash between the two
        // replays the chunk from the local log like any recovery.
        Rc rc = lm.AppendRaw(chunk.data(), chunk.size(), info.frames,
                             info.max_seq);
        if (rc != Rc::kOk) {
          fatal = true;  // local log unwritable; retrying cannot help
          break;
        }
        applier_->ApplyChunk(chunk.data(), chunk.size());
        local += chunk.size();
        g_repl_appends.Add();
      }
      net::RequestHeader ack;
      ack.opcode = static_cast<uint8_t>(net::Op::kReplAck);
      ack.params[0] = local;
      ack.params[1] = applier_->applied_seq();
      if (!c.Send(ack, {}, &err)) break;
    }
    connected_.store(false, std::memory_order_release);
    live_fd_.store(-1, std::memory_order_release);
    if (fatal) return;
  }
}

}  // namespace preemptdb::repl
