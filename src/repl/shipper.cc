#include "repl/shipper.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "engine/checkpoint.h"
#include "engine/log.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace preemptdb::repl {

namespace {

obs::Counter g_ship_sessions("repl.ship.sessions");
obs::Counter g_ship_chunks("repl.ship.chunks");
obs::Counter g_ship_bytes("repl.ship.bytes");
obs::Counter g_ship_snapshots("repl.ship.snapshots");
obs::Counter g_ship_dropped("repl.ship.injected_drops");
obs::Counter g_ship_dups("repl.ship.injected_dups");
obs::Counter g_ship_resets("repl.ship.injected_resets");

bool ReadWholeFile(const std::string& path, std::string* out) {
  FILE* f = ::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  size_t got;
  while ((got = ::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, got);
  bool ok = ::ferror(f) == 0;
  ::fclose(f);
  return ok;
}

// Largest whole-frame prefix of [data, data+n). The range comes from below
// durable_bytes, so every frame is complete on disk — a cut can only happen
// because the read window ends mid-frame.
size_t WholeFramePrefix(const char* data, size_t n) {
  size_t pos = 0;
  while (pos + sizeof(engine::SegmentHeader) <= n) {
    engine::SegmentHeader sh;
    std::memcpy(&sh, data + pos, sizeof(sh));
    if (sh.magic != engine::kSegmentMagic) break;  // poisoned file; stop
    if (pos + sizeof(sh) + sh.length > n) break;
    pos += sizeof(sh) + sh.length;
  }
  return pos;
}

}  // namespace

Shipper::Shipper(engine::Engine* engine) : Shipper(engine, Options()) {}

Shipper::Shipper(engine::Engine* engine, Options opts)
    : engine_(engine), opts_(opts) {}

Shipper::~Shipper() {
  Stop();
  gauges_.Clear();
}

void Shipper::AddFollower(int fd, const net::RequestHeader& sub) {
  std::lock_guard<std::mutex> g(mu_);
  if (stopping_.load(std::memory_order_acquire)) {
    ::close(fd);
    return;
  }
  for (uint32_t i = 0; i < kMaxFollowers; ++i) {
    Slot* s = &slots_[i];
    if (s->active.load(std::memory_order_acquire)) continue;
    if (s->thread.joinable()) s->thread.join();  // reap the finished session
    if (!s->ever_used.exchange(true, std::memory_order_acq_rel)) {
      const std::string p = "repl.follower" + std::to_string(i) + ".";
      gauges_.Add(p + "applied_seq", [s] {
        return static_cast<double>(
            s->applied_seq.load(std::memory_order_relaxed));
      });
      engine::Engine* eng = engine_;
      gauges_.Add(p + "lag_bytes", [s, eng] {
        if (!s->active.load(std::memory_order_acquire)) return 0.0;
        uint64_t durable = eng->log_manager().durable_bytes();
        uint64_t acked = s->acked.load(std::memory_order_relaxed);
        return durable > acked ? static_cast<double>(durable - acked) : 0.0;
      });
    }
    s->fd.store(fd, std::memory_order_release);
    s->active.store(true, std::memory_order_release);
    sessions_started_.fetch_add(1, std::memory_order_relaxed);
    g_ship_sessions.Add();
    s->thread = std::thread([this, s, sub] { Run(s, sub); });
    return;
  }
  ::close(fd);  // every slot taken: the follower will retry
}

void Shipper::Stop() {
  stopping_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> g(mu_);
  for (Slot& s : slots_) {
    int fd = s.fd.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // unblock poll/send
  }
  for (Slot& s : slots_) {
    if (s.thread.joinable()) s.thread.join();
  }
}

std::vector<Shipper::FollowerView> Shipper::Followers() const {
  std::vector<FollowerView> out;
  uint64_t durable = engine_->log_manager().durable_bytes();
  for (uint32_t i = 0; i < kMaxFollowers; ++i) {
    const Slot& s = slots_[i];
    if (!s.ever_used.load(std::memory_order_acquire)) continue;
    FollowerView v;
    v.slot = i;
    v.connected = s.active.load(std::memory_order_acquire);
    v.shipped_bytes = s.shipped.load(std::memory_order_relaxed);
    v.acked_bytes = s.acked.load(std::memory_order_relaxed);
    v.applied_seq = s.applied_seq.load(std::memory_order_relaxed);
    v.lag_bytes = v.connected && durable > v.acked_bytes
                      ? durable - v.acked_bytes
                      : 0;
    out.push_back(v);
  }
  return out;
}

uint32_t Shipper::follower_count() const {
  uint32_t n = 0;
  for (const Slot& s : slots_) {
    if (s.active.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

uint64_t Shipper::max_lag_bytes() const {
  uint64_t durable = engine_->log_manager().durable_bytes();
  uint64_t max = 0;
  for (const Slot& s : slots_) {
    if (!s.active.load(std::memory_order_acquire)) continue;
    uint64_t acked = s.acked.load(std::memory_order_relaxed);
    if (durable > acked && durable - acked > max) max = durable - acked;
  }
  return max;
}

bool Shipper::SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w;
    do {
      w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    } while (w < 0 && errno == EINTR);
    if (w <= 0) return false;
    off += static_cast<size_t>(w);
  }
  return true;
}

bool Shipper::DrainAcks(Slot* slot, std::string* ackbuf, bool* dead) {
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(slot->fd.load(std::memory_order_relaxed), buf,
                       sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      ackbuf->append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      *dead = true;  // orderly EOF: the follower went away
      return true;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    *dead = true;
    return true;
  }
  size_t pos = 0;
  while (ackbuf->size() - pos >= net::kRequestHeaderSize) {
    net::RequestHeader h;
    if (!net::DecodeRequestHeader(
            reinterpret_cast<const uint8_t*>(ackbuf->data() + pos), &h)) {
      *dead = true;  // framing lost; the follower will resubscribe
      return false;
    }
    if (ackbuf->size() - pos < net::kRequestHeaderSize + h.payload_len) break;
    pos += net::kRequestHeaderSize + h.payload_len;
    if (static_cast<net::Op>(h.opcode) != net::Op::kReplAck) continue;
    // Acked bytes only move forward (a reconnecting follower's first ack
    // can trail a previous session's frontier; lag must not jump negative).
    uint64_t prev = slot->acked.load(std::memory_order_relaxed);
    if (h.params[0] > prev) {
      slot->acked.store(h.params[0], std::memory_order_relaxed);
    }
    slot->applied_seq.store(h.params[1], std::memory_order_relaxed);
  }
  if (pos > 0) ackbuf->erase(0, pos);
  return true;
}

void Shipper::Run(Slot* slot, net::RequestHeader sub) {
  obs::RegisterThisThread("repl-ship");
  const int fd = slot->fd.load(std::memory_order_acquire);
  engine::LogManager& lm = engine_->log_manager();
  const std::string dir = engine_->log_dir();

  const uint64_t follower_off = sub.params[0];
  const uint64_t durable_at_hello = lm.durable_bytes();

  // Mode decision. A fresh follower (offset 0) bootstraps from the last
  // complete checkpoint when one exists — shipping the compacted image plus
  // the redo tail beats replaying the log from byte 0. An offset beyond our
  // durable frontier means the follower's history is not ours (or we lost a
  // log they kept); a checkpoint bootstrap resets them onto this timeline.
  uint64_t ckpt_seq = 0, ckpt_ts = 0, ckpt_redo = 0;
  std::string ckpt_file, merr, image;
  bool have_ckpt = engine::LoadCheckpointManifest(dir, &ckpt_seq, &ckpt_ts,
                                                  &ckpt_redo, &ckpt_file,
                                                  &merr);
  bool want_snapshot =
      have_ckpt && (follower_off == 0 || follower_off > durable_at_hello);
  if (want_snapshot && !ReadWholeFile(dir + "/" + ckpt_file, &image)) {
    want_snapshot = false;  // manifest names a file we cannot read; resume
    image.clear();
  }

  net::ReplHelloWire hello;
  if (want_snapshot) {
    hello.mode = net::kReplModeSnapshot;
    hello.ckpt_seq = ckpt_seq;
    hello.ckpt_ts = ckpt_ts;
    hello.snapshot_bytes = image.size();
    hello.start_off = ckpt_redo;
  } else {
    hello.mode = net::kReplModeResume;
    hello.start_off = follower_off <= durable_at_hello ? follower_off : 0;
  }
  hello.durable_seq = lm.durable_seq();

  net::ResponseHeader rh;
  rh.status = static_cast<uint8_t>(net::WireStatus::kOk);
  rh.rc = static_cast<uint8_t>(Rc::kOk);
  rh.request_id = sub.request_id;
  std::string frame;
  net::EncodeResponse(
      rh,
      std::string_view(reinterpret_cast<const char*>(&hello),
                       net::kReplHelloWireSize),
      &frame);
  bool alive = SendAll(fd, frame.data(), frame.size());

  if (alive && want_snapshot) {
    g_ship_snapshots.Add();
    for (uint64_t off = 0; alive && off < image.size();
         off += kChunkBudget) {
      size_t len = image.size() - off;
      if (len > kChunkBudget) len = kChunkBudget;
      net::RequestHeader ch;
      ch.opcode = static_cast<uint8_t>(net::Op::kReplSnapshot);
      ch.request_id = off / kChunkBudget;
      ch.params[0] = off;
      ch.params[1] = image.size();
      ch.params[2] = ckpt_seq;
      frame.clear();
      net::EncodeRequest(ch, std::string_view(image.data() + off, len),
                         &frame);
      alive = SendAll(fd, frame.data(), frame.size());
    }
  }

  uint64_t shipped = hello.start_off;
  slot->shipped.store(shipped, std::memory_order_relaxed);
  slot->acked.store(shipped, std::memory_order_relaxed);

  int lfd = ::open((dir + "/redo.log").c_str(), O_RDONLY | O_CLOEXEC);
  std::vector<char> buf(kChunkBudget);
  std::string ackbuf;
  bool dead = !alive || lfd < 0;
  while (!dead && !stopping_.load(std::memory_order_acquire)) {
    DrainAcks(slot, &ackbuf, &dead);
    if (dead) break;
    uint64_t durable = lm.durable_bytes();
    if (shipped >= durable) {
      // Caught up: wait for acks (or the peer hanging up) with a short cap
      // so new durable bytes ship promptly.
      pollfd p{fd, POLLIN, 0};
      ::poll(&p, 1, 20);
      continue;
    }
    size_t want = durable - shipped;
    if (want > buf.size()) want = buf.size();
    ssize_t n = ::pread(lfd, buf.data(), want, static_cast<off_t>(shipped));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // durable bytes unreadable: give up, follower resubscribes
    }
    size_t chunk = WholeFramePrefix(buf.data(), static_cast<size_t>(n));
    if (chunk == 0) break;  // should be impossible below durable_bytes

    if (PDB_UNLIKELY(fault::ShouldFire(fault::Point::kReplShip))) {
      uint64_t mode = fault::Param(fault::Point::kReplShip);
      if (mode == fault::kReplShipDrop) {
        // Skip the send but advance: the follower sees an offset gap and
        // recovers by resubscribing at its own frontier.
        g_ship_dropped.Add();
        shipped += chunk;
        slot->shipped.store(shipped, std::memory_order_relaxed);
        continue;
      }
      if (mode == fault::kReplShipConnReset) {
        g_ship_resets.Add();
        break;
      }
      if (mode == fault::kReplShipStall) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      // kReplShipDup falls through: the chunk is sent twice below.
    }

    net::RequestHeader ah;
    ah.opcode = static_cast<uint8_t>(net::Op::kReplAppend);
    ah.request_id = shipped;  // offset doubles as a stable frame id
    ah.params[0] = shipped;
    ah.params[1] = lm.durable_seq();
    frame.clear();
    net::EncodeRequest(ah, std::string_view(buf.data(), chunk), &frame);
    if (!SendAll(fd, frame.data(), frame.size())) break;
    if (PDB_UNLIKELY(fault::Enabled()) &&
        fault::Param(fault::Point::kReplShip) == fault::kReplShipDup &&
        fault::ShouldFire(fault::Point::kReplShip)) {
      g_ship_dups.Add();
      if (!SendAll(fd, frame.data(), frame.size())) break;
    }
    shipped += chunk;
    slot->shipped.store(shipped, std::memory_order_relaxed);
    g_ship_chunks.Add();
    g_ship_bytes.Add(chunk);
    if (opts_.max_bytes_per_sec > 0) {
      // Token-bucket pacing (one-chunk burst): the chunk just sent must
      // drain at the configured rate before the next one may leave. Sliced
      // sleep so Stop() stays prompt even at very low rates.
      uint64_t until =
          MonoNanos() + chunk * 1'000'000'000ull / opts_.max_bytes_per_sec;
      while (!stopping_.load(std::memory_order_acquire)) {
        uint64_t now = MonoNanos();
        if (now >= until) break;
        uint64_t left = until - now;
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            left < 10'000'000 ? left : 10'000'000));
      }
    }
  }

  if (lfd >= 0) ::close(lfd);
  ::close(fd);
  slot->fd.store(-1, std::memory_order_release);
  slot->active.store(false, std::memory_order_release);
}

}  // namespace preemptdb::repl
