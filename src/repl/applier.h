// Follower-side application of shipped redo segments into a LIVE engine.
//
// The primary ships the redo log verbatim (whole CRC-framed segments, see
// engine/log.h), so the follower replays exactly what local crash recovery
// would replay — same parsing, same transaction grouping, same dedup rule —
// but against an engine that is concurrently serving read-only transactions.
// Two things make that safe:
//
//   * Version installs use release stores, so a reader that finds a new
//     chain head sees its payload fully built.
//   * The engine's commit-timestamp counter only advances (Engine::
//     AdvanceTs) AFTER a transaction's whole record group is installed.
//     Until then every installed version carries clsn > any reader's begin
//     timestamp, so readers never observe half a transaction — the same
//     argument snapshot isolation makes for in-flight local writers.
//
// A group is applied only when its kSegTxnEnd segment arrives (groups are
// buffered per commit_seq, exactly like recovery), so a primary that dies
// mid-transaction never leaks a partial commit to replica reads.
#ifndef PREEMPTDB_REPL_APPLIER_H_
#define PREEMPTDB_REPL_APPLIER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/log.h"
#include "sched/request.h"
#include "util/macros.h"

namespace preemptdb::repl {

// Frame-walk summary of one shipped chunk.
struct ChunkInfo {
  uint64_t frames = 0;     // complete CRC-valid segments found
  uint64_t max_seq = 0;    // highest commit_seq among them
  uint64_t valid_bytes = 0;  // whole-frame prefix that validated
};

// Walks [data, data+n) as CRC-framed redo segments. Returns true when the
// entire range is whole, CRC-valid frames (info->valid_bytes == n); false
// means the stream is torn or corrupt at valid_bytes — the follower treats
// that as transport corruption and resubscribes rather than applying.
bool ValidateFrames(const char* data, size_t n, ChunkInfo* info);

// Byte offset of the end of the last valid frame in `path`, scanning from
// `from_off` (the local manifest's redo_off; bytes before it may be a
// sparse bootstrap hole and are not parseable frames). Returns `from_off`
// when the file is missing, shorter than from_off, or starts torn — the
// same truncation point local recovery would pick.
uint64_t ScanValidLogEnd(const std::string& path, uint64_t from_off);

class Applier {
 public:
  explicit Applier(engine::Engine* engine) : engine_(engine) {}
  PDB_DISALLOW_COPY_AND_ASSIGN(Applier);

  // Applies one shipped chunk of whole frames (caller validated with
  // ValidateFrames and landed it via LogManager::AppendRaw first, so the
  // on-disk log is always at least as new as the in-memory state a crash
  // must rebuild). Returns false on a malformed frame — the caller's
  // validation makes that unreachable in practice. Drive-to-completion
  // loop over ApplyChunkStep.
  bool ApplyChunk(const char* data, size_t n);

  // Resumable-step form of the chunk apply, on the scheduler's StepFn
  // contract (sched/request.h): each call applies at most `max_frames`
  // whole segments, keeps its resume offset in sc->u64[0], prefetches the
  // next segment header before yielding (counted in sc->prefetches), and
  // returns kYieldedVoluntary until the chunk is exhausted — so a replica
  // that also serves reads can interleave apply work with them slot-for-
  // slot instead of disappearing into one long chunk. Transaction
  // atomicity is untouched: groups still publish only at their kSegTxnEnd
  // frame, whichever step that frame lands in.
  sched::StepResult ApplyChunkStep(const char* data, size_t n,
                                   uint64_t max_frames,
                                   sched::StepContext* sc);

  // Highest commit_seq whose full group has been applied and published.
  uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_acquire);
  }
  uint64_t applied_txns() const {
    return applied_txns_.load(std::memory_order_relaxed);
  }
  uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_relaxed);
  }
  uint64_t skipped_records() const {
    return skipped_records_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingRecord {
    engine::LogRecordHeader hdr;
    std::string payload;
  };

  void ApplyRecord(uint64_t seq, const engine::LogRecordHeader& h,
                   const char* payload);

  engine::Engine* const engine_;
  // Transaction groups awaiting their end marker (apply-thread-only).
  std::map<uint64_t, std::vector<PendingRecord>> pending_;
  std::atomic<uint64_t> applied_seq_{0};
  std::atomic<uint64_t> applied_txns_{0};
  std::atomic<uint64_t> applied_records_{0};
  std::atomic<uint64_t> skipped_records_{0};
};

}  // namespace preemptdb::repl

#endif  // PREEMPTDB_REPL_APPLIER_H_
