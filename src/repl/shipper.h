// Primary-side log shipping: one session thread per subscribed follower.
//
// A follower arrives as an ordinary wire connection whose first frame is
// kReplSubscribe; the serving shard detaches the socket from its event loop
// (Connection::DetachFd) and hands the raw fd here. The session thread then
// owns the socket end to end:
//
//   1. Mode decision — resume from the follower's durable offset when the
//      primary's log still covers it, otherwise ship the last complete
//      checkpoint for bootstrap (hello.mode = kReplModeSnapshot).
//   2. Hello — a ResponseHeader whose payload is ReplHelloWire.
//   3. Snapshot (bootstrap only) — the checkpoint file in <=256 KiB
//      kReplSnapshot chunks.
//   4. Stream — kReplAppend chunks of whole CRC-framed redo segments read
//      from the log file, strictly within [shipped, durable_bytes): a byte
//      is never shipped before a completed fdatasync covers it, so a
//      follower can never apply state the primary would lose in a crash.
//      durable_bytes is always a frame boundary (log.h), so chunk carving
//      only ever cuts between frames, never inside one.
//   5. Acks — kReplAck frames read back on the same socket carry the
//      follower's durable offset + applied commit_seq; per-follower lag is
//      durable_bytes - acked, exported as repl.follower<i>.* gauges.
//
// The fault::kReplShip point perturbs step 4 (drop / dup / connreset /
// stall — the `replship:` spec grammar); the follower's offset check turns
// a dropped chunk into a detectable gap and a duplicated one into a no-op.
#ifndef PREEMPTDB_REPL_SHIPPER_H_
#define PREEMPTDB_REPL_SHIPPER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "util/macros.h"

namespace preemptdb::repl {

class Shipper {
 public:
  // Follower slots are a small fixed pool so gauge names stay stable across
  // reconnects (a returning follower lands in the lowest free slot).
  static constexpr uint32_t kMaxFollowers = 8;
  // Chunk payload budget; >= one max frame (LogBuffer::kCapacity + header),
  // well under the wire payload cap.
  static constexpr size_t kChunkBudget = 256 * 1024;

  struct Options {
    // Per-follower redo-stream pacing (token bucket, one-chunk burst): a
    // kReplAppend chunk of B bytes blocks the NEXT chunk for B /
    // max_bytes_per_sec seconds, so a bootstrapping or far-behind follower
    // cannot saturate the primary's NIC against foreground traffic.
    // 0 = unlimited (ship as fast as the socket takes bytes). Snapshot
    // chunks are not paced — bootstrap is a one-shot bulk copy.
    uint64_t max_bytes_per_sec = 0;
  };

  struct FollowerView {
    uint32_t slot = 0;
    bool connected = false;
    uint64_t shipped_bytes = 0;
    uint64_t acked_bytes = 0;
    uint64_t applied_seq = 0;
    uint64_t lag_bytes = 0;  // primary durable_bytes - acked_bytes
  };

  explicit Shipper(engine::Engine* engine);
  Shipper(engine::Engine* engine, Options opts);
  ~Shipper();
  PDB_DISALLOW_COPY_AND_ASSIGN(Shipper);

  // Takes ownership of a detached, blocking-mode socket whose subscribe
  // frame was `sub`. Closes the fd immediately when stopping or when every
  // slot is taken. Called from shard threads.
  void AddFollower(int fd, const net::RequestHeader& sub);

  // Stops every session thread (shutdown + join). Idempotent.
  void Stop();

  // Point-in-time view of slots that are (or have been) connected.
  std::vector<FollowerView> Followers() const;
  uint32_t follower_count() const;
  uint64_t max_lag_bytes() const;
  uint64_t sessions_started() const {
    return sessions_started_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<bool> active{false};
    std::atomic<bool> ever_used{false};
    std::atomic<int> fd{-1};
    std::atomic<uint64_t> shipped{0};
    std::atomic<uint64_t> acked{0};
    std::atomic<uint64_t> applied_seq{0};
    std::thread thread;
  };

  void Run(Slot* slot, net::RequestHeader sub);
  bool SendAll(int fd, const char* data, size_t n);
  // Drains whatever ack bytes the socket has (non-blocking); *dead on
  // EOF/error. `ackbuf` persists partial frames across calls.
  bool DrainAcks(Slot* slot, std::string* ackbuf, bool* dead);

  engine::Engine* const engine_;
  const Options opts_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> sessions_started_{0};
  mutable std::mutex mu_;  // slot assignment / join
  Slot slots_[kMaxFollowers];
  obs::GaugeGroup gauges_;
};

}  // namespace preemptdb::repl

#endif  // PREEMPTDB_REPL_SHIPPER_H_
