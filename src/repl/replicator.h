// Follower-side replication: bootstrap local state from the primary, then
// apply its shipped redo stream into a live read-only engine.
//
// Life cycle is two-phase, split around the engine's own recovery:
//
//   Bootstrap()  — BEFORE Engine::EnableDurability. Reconciles the local
//     directory with the primary: scans the local redo log for its valid
//     frame prefix (truncating any torn tail, exactly like local recovery),
//     subscribes with that offset, and if the primary answers with a
//     checkpoint bootstrap, downloads + installs the image and creates a
//     redo log sparse-extended to the checkpoint's redo offset. Either way
//     the directory afterwards recovers through the ordinary recovery path
//     to a state whose redo offsets EQUAL the primary's — the two logs are
//     byte-identical over the follower's range, forever.
//
//   Start(engine) — AFTER recovery. Spawns the apply thread: subscribe at
//     the engine's appended_bytes, stream kReplAppend chunks, validate
//     frames (CRC), land them via LogManager::AppendRaw (durability first),
//     apply them via Applier (visibility second), ack with the new durable
//     offset + applied commit_seq. Disconnects reconnect with backoff and
//     resume from the follower's own frontier; a primary that can no longer
//     serve our offset sets rebuild_required() and the thread exits (the
//     operator restarts the follower, which re-bootstraps from checkpoint).
#ifndef PREEMPTDB_REPL_REPLICATOR_H_
#define PREEMPTDB_REPL_REPLICATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "engine/engine.h"
#include "repl/applier.h"
#include "util/macros.h"

namespace preemptdb::repl {

class Replicator {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string dir;  // follower data directory
  };

  explicit Replicator(Options opts) : opts_(std::move(opts)) {}
  ~Replicator() { Stop(); }
  PDB_DISALLOW_COPY_AND_ASSIGN(Replicator);

  // Phase 1 (see file comment). On success the directory is ready for
  // Engine::EnableDurability. Fails (with *err) when the primary is
  // unreachable or a shipped image is corrupt.
  bool Bootstrap(std::string* err);

  // Phase 2: starts the apply thread against a recovered, durable engine.
  void Start(engine::Engine* engine);
  // Stops and joins the apply thread. Idempotent.
  void Stop();

  bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }
  // The primary refused our offset and had no resume path; local state must
  // be rebuilt from scratch (wipe + Bootstrap again).
  bool rebuild_required() const {
    return rebuild_required_.load(std::memory_order_acquire);
  }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  // Primary's durable commit frontier as of the last kReplAppend frame —
  // applied_seq() vs this is the follower's staleness in commit_seqs.
  uint64_t primary_durable_seq() const {
    return primary_durable_seq_.load(std::memory_order_relaxed);
  }
  uint64_t applied_seq() const {
    return applier_ ? applier_->applied_seq() : 0;
  }
  const Applier* applier() const { return applier_.get(); }
  const Options& options() const { return opts_; }

 private:
  void RunApply();

  const Options opts_;
  engine::Engine* engine_ = nullptr;
  std::unique_ptr<Applier> applier_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> connected_{false};
  std::atomic<bool> rebuild_required_{false};
  std::atomic<int> live_fd_{-1};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> primary_durable_seq_{0};
};

}  // namespace preemptdb::repl

#endif  // PREEMPTDB_REPL_REPLICATOR_H_
