#include "core/preemptdb.h"

#include <sched.h>

#include <chrono>
#include <thread>

namespace preemptdb {

// Heap-allocated submission: owned by the queue until a worker runs it.
struct DB::Closure {
  TxnFn fn;
  std::atomic<Rc>* rc_out = nullptr;       // non-null for SubmitAndWait
  std::atomic<bool>* done_flag = nullptr;  // set after rc_out
};

std::unique_ptr<DB> DB::Open(const Options& options) {
  return std::unique_ptr<DB>(new DB(options));
}

DB::DB(const Options& options) {
  lp_submissions_ = std::make_unique<MpmcQueue<Closure*>>(1 << 12);
  hp_submissions_ = std::make_unique<MpmcQueue<Closure*>>(1 << 12);
  if (options.gc_interval_ms > 0) {
    engine_.StartBackgroundGc(options.gc_interval_ms);
  }
  if (options.start_scheduler) {
    sched::Scheduler::Workload workload;
    workload.execute = &DB::ExecuteThunk;
    workload.exec_ctx = this;
    workload.gen_low = [this](sched::Request* out) {
      return PopSubmission(sched::Priority::kLow, out);
    };
    workload.gen_high = [this](sched::Request* out) {
      return PopSubmission(sched::Priority::kHigh, out);
    };
    // Submissions carry owned closures: a shed request must be requeued,
    // never dropped, or Drain()/SubmitAndWait() would wait forever.
    workload.on_shed = [this](const sched::Request& r) {
      auto* c = reinterpret_cast<Closure*>(r.params[0]);
      while (!hp_submissions_->TryPush(c)) sched_yield();
    };
    scheduler_ =
        std::make_unique<sched::Scheduler>(options.scheduler, workload);
    scheduler_->Start();
  }
}

DB::~DB() {
  if (scheduler_ != nullptr) {
    Drain();
    scheduler_->Stop();
  }
  // Free any closures that never ran (engine-only DBs or races at exit).
  Closure* c;
  while (lp_submissions_->TryPop(&c)) delete c;
  while (hp_submissions_->TryPop(&c)) delete c;
}

bool DB::PopSubmission(sched::Priority priority, sched::Request* out) {
  auto& q = priority == sched::Priority::kHigh ? *hp_submissions_
                                               : *lp_submissions_;
  Closure* c;
  if (!q.TryPop(&c)) return false;
  out->type = 0;
  out->params[0] = reinterpret_cast<uint64_t>(c);
  return true;
}

Rc DB::ExecuteThunk(const sched::Request& req, void* ctx, int /*worker_id*/) {
  auto* db = static_cast<DB*>(ctx);
  auto* c = reinterpret_cast<Closure*>(req.params[0]);
  Rc rc = c->fn(db->engine_);
  if (c->rc_out != nullptr) {
    c->rc_out->store(rc, std::memory_order_release);
  }
  if (c->done_flag != nullptr) {
    c->done_flag->store(true, std::memory_order_release);
  }
  delete c;
  db->completed_.fetch_add(1, std::memory_order_release);
  return rc;
}

bool DB::Submit(sched::Priority priority, TxnFn fn) {
  PDB_CHECK_MSG(scheduler_ != nullptr, "DB opened without a scheduler");
  auto* c = new Closure{std::move(fn), nullptr, nullptr};
  auto& q = priority == sched::Priority::kHigh ? *hp_submissions_
                                               : *lp_submissions_;
  if (!q.TryPush(c)) {
    delete c;
    return false;
  }
  submitted_.fetch_add(1, std::memory_order_release);
  return true;
}

Rc DB::SubmitAndWait(sched::Priority priority, TxnFn fn) {
  PDB_CHECK_MSG(scheduler_ != nullptr, "DB opened without a scheduler");
  std::atomic<Rc> rc{Rc::kError};
  std::atomic<bool> done{false};
  auto* c = new Closure{std::move(fn), &rc, &done};
  auto& q = priority == sched::Priority::kHigh ? *hp_submissions_
                                               : *lp_submissions_;
  while (!q.TryPush(c)) sched_yield();
  submitted_.fetch_add(1, std::memory_order_release);
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return rc.load(std::memory_order_acquire);
}

void DB::Drain() {
  while (completed_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

sched::Metrics& DB::metrics() {
  PDB_CHECK(scheduler_ != nullptr);
  return scheduler_->metrics();
}

sched::Scheduler& DB::scheduler() {
  PDB_CHECK(scheduler_ != nullptr);
  return *scheduler_;
}

}  // namespace preemptdb
