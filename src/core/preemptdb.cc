#include "core/preemptdb.h"

#include <sched.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace preemptdb {

namespace {

obs::Counter g_retry_attempts("db.retry_attempts");
obs::Counter g_retry_success("db.retry_success");
obs::Counter g_retries_exhausted("db.retries_exhausted");
obs::Counter g_txn_timeouts("db.txn_timeout");
obs::Counter g_submit_queue_full("db.submit_queue_full");

size_t RoundUpPow2(size_t v) {
  size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* SubmitResultString(SubmitResult r) {
  switch (r) {
    case SubmitResult::kAccepted:
      return "accepted";
    case SubmitResult::kQueueFull:
      return "queue_full";
    case SubmitResult::kStopped:
      return "stopped";
  }
  return "?";
}

// Heap-allocated submission: owned by the queue until a worker runs it (or
// the scheduler expires it).
struct DB::Closure {
  TxnFn fn;
  std::atomic<Rc>* rc_out = nullptr;       // non-null for SubmitAndWait
  std::atomic<bool>* done_flag = nullptr;  // set after rc_out
  uint64_t deadline_ns = 0;                // absolute MonoNanos; 0 = none
  RetryPolicy retry;
  CompletionFn on_complete;  // optional; fired once with the terminal Rc
  uint32_t shard_id = 0;     // submitting front-end shard (observational)
  // Caller-owned lifecycle timeline; must not be touched after on_complete
  // fires (the owner may free it then). See SubmitOptions::timeline.
  obs::TxnTimeline* timeline = nullptr;
};

std::unique_ptr<DB> DB::Open(const Options& options) {
  return std::unique_ptr<DB>(new DB(options));
}

DB::DB(const Options& options) {
  if (!options.log_dir.empty()) {
    // Durability first: recovery must run against a fresh engine, before
    // tables, GC, or the scheduler can touch it.
    std::string err;
    bool ok = engine_.EnableDurability(options.log_dir, &err,
                                       &recovery_stats_);
    if (!ok) {
      ::fprintf(stderr, "preemptdb: EnableDurability(%s) failed: %s\n",
                options.log_dir.c_str(), err.c_str());
    }
    PDB_CHECK_MSG(ok, "EnableDurability failed");
    if (options.checkpoint_interval_ms > 0) {
      engine_.StartCheckpointer(options.checkpoint_interval_ms);
    }
  }
  size_t cap = RoundUpPow2(options.submit_queue_capacity);
  lp_submissions_ = std::make_unique<MpmcQueue<Closure*>>(cap);
  hp_submissions_ = std::make_unique<MpmcQueue<Closure*>>(cap);
  if (options.gc_interval_ms > 0) {
    engine_.StartBackgroundGc(options.gc_interval_ms);
  }
  if (options.start_scheduler) {
    sched::Scheduler::Workload workload;
    workload.execute = &DB::ExecuteThunk;
    workload.exec_ctx = this;
    workload.gen_low = [this](sched::Request* out) {
      return PopSubmission(sched::Priority::kLow, out);
    };
    workload.gen_high = [this](sched::Request* out) {
      return PopSubmission(sched::Priority::kHigh, out);
    };
    // Submissions carry owned closures: a shed request must be requeued,
    // never dropped, or Drain()/SubmitAndWait() would wait forever.
    workload.on_shed = [this](const sched::Request& r) {
      auto* c = reinterpret_cast<Closure*>(r.params[0]);
      while (!hp_submissions_->TryPush(c)) sched_yield();
    };
    // Expired requests are dead, not requeued: complete them as kTimeout so
    // waiters unblock and Drain() still terminates.
    workload.on_expired = [this](const sched::Request& r) {
      CompleteWithoutRunning(reinterpret_cast<Closure*>(r.params[0]),
                             Rc::kTimeout);
    };
    scheduler_ =
        std::make_unique<sched::Scheduler>(options.scheduler, workload);
    scheduler_->Start();
  }
}

DB::~DB() {
  stopping_.store(true, std::memory_order_release);
  if (scheduler_ != nullptr) {
    Drain();
    scheduler_->Stop();
  }
  // Free any closures that never ran (engine-only DBs or races at exit).
  // Completion callbacks still fire — "accepted implies completed" holds
  // even for a submission that slipped in as the DB shut down.
  Closure* c;
  while (lp_submissions_->TryPop(&c)) {
    if (c->on_complete) c->on_complete(Rc::kError);
    delete c;
  }
  while (hp_submissions_->TryPop(&c)) {
    if (c->on_complete) c->on_complete(Rc::kError);
    delete c;
  }
}

void DB::CompleteWithoutRunning(Closure* c, Rc rc) {
  if (rc == Rc::kTimeout) g_txn_timeouts.Add();
  // Never ran: stamp terminal time so the owner can compute total latency,
  // but record no run-stage samples (first_run_ns stays 0, which is the
  // "excluded from stage histograms" marker). Must happen before
  // on_complete — the owner may free the timeline from the callback.
  if (c->timeline != nullptr) {
    c->timeline->done_ns = MonoNanos();
  }
  if (c->rc_out != nullptr) {
    c->rc_out->store(rc, std::memory_order_release);
  }
  if (c->done_flag != nullptr) {
    c->done_flag->store(true, std::memory_order_release);
  }
  if (c->on_complete) c->on_complete(rc);
  delete c;
  completed_.fetch_add(1, std::memory_order_release);
}

bool DB::PopSubmission(sched::Priority priority, sched::Request* out) {
  auto& q = priority == sched::Priority::kHigh ? *hp_submissions_
                                               : *lp_submissions_;
  Closure* c;
  while (q.TryPop(&c)) {
    // Dequeue-side expiry: work that died waiting in the submission queue
    // never reaches a worker.
    if (c->deadline_ns != 0 && MonoNanos() >= c->deadline_ns) {
      CompleteWithoutRunning(c, Rc::kTimeout);
      continue;
    }
    out->type = 0;
    out->params[0] = reinterpret_cast<uint64_t>(c);
    out->deadline_ns = c->deadline_ns;
    out->shard_id = c->shard_id;
    out->timeline = c->timeline;
    if (c->timeline != nullptr) {
      c->timeline->dispatch_ns = MonoNanos();
      obs::Trace(obs::EventType::kTxnDispatch, c->shard_id);
    }
    return true;
  }
  return false;
}

Rc DB::RunWithRetry(const TxnFn& fn, const RetryPolicy& retry,
                    uint64_t jitter_base, uint64_t deadline_ns) {
  const int attempts = std::max(1, retry.max_attempts);
  const uint64_t seed =
      retry.jitter_seed != 0 ? retry.jitter_seed : jitter_base;
  uint64_t backoff_us = retry.initial_backoff_us;
  Rc rc = Rc::kError;
  for (int attempt = 1;; ++attempt) {
    rc = fn(engine_);
    if (!IsRetryableAbort(rc)) {
      if (attempt > 1 && IsOk(rc)) g_retry_success.Add();
      return rc;
    }
    if (attempt >= attempts) break;
    if (deadline_ns != 0 && MonoNanos() >= deadline_ns) break;
    g_retry_attempts.Add();
    if (backoff_us > 0) {
      // Deterministic jitter in [backoff/2, backoff]: same seed, same
      // sequence of sleeps — chaos runs stay reproducible.
      uint64_t half = backoff_us / 2;
      uint64_t sleep_us =
          backoff_us - SplitMix(seed ^ static_cast<uint64_t>(attempt)) %
                           (half + 1);
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      backoff_us = std::min(backoff_us * 2, retry.max_backoff_us);
    }
  }
  if (attempts > 1) g_retries_exhausted.Add();
  return rc;
}

Rc DB::Execute(const TxnFn& fn, const RetryPolicy& retry) {
  return RunWithRetry(fn, retry, reinterpret_cast<uint64_t>(&fn), 0);
}

Rc DB::ExecuteThunk(const sched::Request& req, void* ctx, int /*worker_id*/) {
  auto* db = static_cast<DB*>(ctx);
  auto* c = reinterpret_cast<Closure*>(req.params[0]);
  // Last-chance expiry: the deadline may have passed between placement and
  // this worker picking the request up. Started transactions are never cut
  // short, so this is the final check.
  if (req.deadline_ns != 0 && MonoNanos() >= req.deadline_ns) {
    // The worker installed this request's timeline as the thread's active
    // one; drop it before completion frees the struct, or an interrupt
    // landing between the free and the worker's restore would write through
    // a dangling pointer.
    if (c->timeline != nullptr) obs::SetActiveTimeline(nullptr);
    db->CompleteWithoutRunning(c, Rc::kTimeout);
    return Rc::kTimeout;
  }
  Rc rc = db->RunWithRetry(c->fn, c->retry, reinterpret_cast<uint64_t>(c),
                           req.deadline_ns);
  // Terminal timeline bookkeeping, strictly before the completion callback:
  // once on_complete fires the owner may free the timeline, so this is the
  // last point it can be touched. Clearing the active slot here (rather
  // than in the worker, which runs after this returns) closes the window
  // where a preemption could attribute itself to a freed timeline.
  if (c->timeline != nullptr) {
    c->timeline->done_ns = MonoNanos();
    obs::RecordSchedStages(*c->timeline);
    obs::SetActiveTimeline(nullptr);
  }
  if (c->rc_out != nullptr) {
    c->rc_out->store(rc, std::memory_order_release);
  }
  if (c->done_flag != nullptr) {
    c->done_flag->store(true, std::memory_order_release);
  }
  if (c->on_complete) c->on_complete(rc);
  delete c;
  db->completed_.fetch_add(1, std::memory_order_release);
  return rc;
}

SubmitResult DB::Submit(sched::Priority priority, TxnFn fn,
                        const SubmitOptions& options) {
  return Submit(priority, std::move(fn), CompletionFn(), options);
}

SubmitResult DB::Submit(sched::Priority priority, TxnFn fn,
                        CompletionFn on_complete,
                        const SubmitOptions& options) {
  PDB_CHECK_MSG(scheduler_ != nullptr, "DB opened without a scheduler");
  if (stopping_.load(std::memory_order_acquire)) return SubmitResult::kStopped;
  auto* c = new Closure{std::move(fn), nullptr, nullptr, 0, options.retry,
                        std::move(on_complete), options.shard_id,
                        options.timeline};
  if (options.timeout_us > 0) {
    c->deadline_ns = MonoNanos() + options.timeout_us * 1000;
  }
  if (c->timeline != nullptr) {
    c->timeline->high_priority = priority == sched::Priority::kHigh ? 1 : 0;
    c->timeline->enqueue_ns = MonoNanos();
  }
  auto& q = priority == sched::Priority::kHigh ? *hp_submissions_
                                               : *lp_submissions_;
  if (!q.TryPush(c)) {
    delete c;
    g_submit_queue_full.Add();
    return SubmitResult::kQueueFull;
  }
  submitted_.fetch_add(1, std::memory_order_release);
  return SubmitResult::kAccepted;
}

Rc DB::SubmitAndWait(sched::Priority priority, TxnFn fn,
                     const SubmitOptions& options) {
  PDB_CHECK_MSG(scheduler_ != nullptr, "DB opened without a scheduler");
  std::atomic<Rc> rc{Rc::kError};
  std::atomic<bool> done{false};
  auto* c = new Closure{std::move(fn), &rc, &done, 0, options.retry,
                        CompletionFn(), options.shard_id, options.timeline};
  if (c->timeline != nullptr) {
    c->timeline->high_priority = priority == sched::Priority::kHigh ? 1 : 0;
    c->timeline->enqueue_ns = MonoNanos();
  }
  uint64_t deadline_ns = 0;
  if (options.timeout_us > 0) {
    deadline_ns = MonoNanos() + options.timeout_us * 1000;
    c->deadline_ns = deadline_ns;
  }
  auto& q = priority == sched::Priority::kHigh ? *hp_submissions_
                                               : *lp_submissions_;
  while (!q.TryPush(c)) {
    if (deadline_ns != 0 && MonoNanos() >= deadline_ns) {
      // Never enqueued: safe to free here; nobody else saw the closure.
      delete c;
      g_txn_timeouts.Add();
      return Rc::kTimeout;
    }
    sched_yield();
  }
  submitted_.fetch_add(1, std::memory_order_release);
  // Once enqueued, ownership is with the pipeline: the waiter must see
  // done_flag before touching the stack slots again, even past the deadline
  // (expiry completes the closure as kTimeout and sets the flag).
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return rc.load(std::memory_order_acquire);
}

Rc DB::SubmitAndWaitFor(sched::Priority priority, TxnFn fn,
                        uint64_t timeout_us) {
  SubmitOptions options;
  options.timeout_us = timeout_us;
  return SubmitAndWait(priority, std::move(fn), options);
}

void DB::Drain() {
  while (completed_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

sched::Metrics& DB::metrics() {
  PDB_CHECK(scheduler_ != nullptr);
  return scheduler_->metrics();
}

sched::Scheduler& DB::scheduler() {
  PDB_CHECK(scheduler_ != nullptr);
  return *scheduler_;
}

}  // namespace preemptdb
