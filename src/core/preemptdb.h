// PreemptDB public API.
//
// A DB bundles the memory-optimized MVCC storage engine with the preemptive
// scheduling runtime (scheduler thread + worker threads with two transaction
// contexts each). Applications either run transactions inline on their own
// thread (Execute) or submit them tagged with a priority (Submit /
// SubmitAndWait), in which case high-priority transactions preempt
// in-progress low-priority ones via simulated user interrupts.
//
//   preemptdb::DB::Options opts;
//   opts.scheduler.policy = preemptdb::sched::Policy::kPreempt;
//   auto db = preemptdb::DB::Open(opts);
//   auto* t = db->CreateTable("accounts");
//   db->Execute([&](preemptdb::engine::Engine& eng) {
//     auto* txn = eng.Begin();
//     txn->Insert(t, 42, "hello");
//     return txn->Commit();
//   });
//   db->SubmitAndWait(preemptdb::sched::Priority::kHigh, ...);
#ifndef PREEMPTDB_CORE_PREEMPTDB_H_
#define PREEMPTDB_CORE_PREEMPTDB_H_

#include <functional>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "sched/scheduler.h"
#include "sync/mpmc_queue.h"

namespace preemptdb {

// A user transaction body: do work through the engine, return the final
// status (typically the Commit() result).
using TxnFn = std::function<Rc(engine::Engine&)>;

class DB {
 public:
  struct Options {
    sched::SchedulerConfig scheduler;
    // Start the scheduling runtime; if false the DB is engine-only and
    // Submit* are unavailable (Execute still works).
    bool start_scheduler = true;
    // Background version-GC period; 0 disables (collect manually via
    // engine().CollectGarbage()).
    uint64_t gc_interval_ms = 50;
  };

  static std::unique_ptr<DB> Open(const Options& options);
  ~DB();
  PDB_DISALLOW_COPY_AND_ASSIGN(DB);

  // --- Engine-level access (caller's thread) ---
  engine::Engine& engine() { return engine_; }
  engine::Table* CreateTable(const std::string& name) {
    return engine_.CreateTable(name);
  }
  engine::Table* GetTable(const std::string& name) const {
    return engine_.GetTable(name);
  }

  // Runs `fn` inline on the calling thread.
  Rc Execute(const TxnFn& fn) { return fn(engine_); }

  // --- Scheduled execution ---

  // Enqueues `fn` with the given priority; returns false if the submission
  // queue is full. Completion is recorded in metrics().
  bool Submit(sched::Priority priority, TxnFn fn);

  // Submits and blocks until the transaction ran; returns its status.
  Rc SubmitAndWait(sched::Priority priority, TxnFn fn);

  // Blocks until all submissions made so far have been executed.
  void Drain();

  sched::Metrics& metrics();
  sched::Scheduler& scheduler();

 private:
  struct Closure;

  explicit DB(const Options& options);
  static Rc ExecuteThunk(const sched::Request& req, void* ctx, int worker_id);
  bool PopSubmission(sched::Priority priority, sched::Request* out);

  engine::Engine engine_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<MpmcQueue<Closure*>> lp_submissions_;
  std::unique_ptr<MpmcQueue<Closure*>> hp_submissions_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
};

}  // namespace preemptdb

#endif  // PREEMPTDB_CORE_PREEMPTDB_H_
