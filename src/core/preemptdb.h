// PreemptDB public API.
//
// A DB bundles the memory-optimized MVCC storage engine with the preemptive
// scheduling runtime (scheduler thread + worker threads with two transaction
// contexts each). Applications either run transactions inline on their own
// thread (Execute) or submit them tagged with a priority (Submit /
// SubmitAndWait), in which case high-priority transactions preempt
// in-progress low-priority ones via simulated user interrupts.
//
//   preemptdb::DB::Options opts;
//   opts.scheduler.policy = preemptdb::sched::Policy::kPreempt;
//   auto db = preemptdb::DB::Open(opts);
//   auto* t = db->CreateTable("accounts");
//   db->Execute([&](preemptdb::engine::Engine& eng) {
//     auto* txn = eng.Begin();
//     txn->Insert(t, 42, "hello");
//     return txn->Commit();
//   });
//   db->SubmitAndWait(preemptdb::sched::Priority::kHigh, ...);
#ifndef PREEMPTDB_CORE_PREEMPTDB_H_
#define PREEMPTDB_CORE_PREEMPTDB_H_

#include <functional>
#include <memory>
#include <string>

#include "engine/checkpoint.h"
#include "engine/engine.h"
#include "obs/timeline.h"
#include "sched/scheduler.h"
#include "sync/mpmc_queue.h"

namespace preemptdb {

// A user transaction body: do work through the engine, return the final
// status (typically the Commit() result).
using TxnFn = std::function<Rc(engine::Engine&)>;

// Completion notification for fire-and-forget submissions (the Submit
// overload below). Invoked exactly once per accepted submission with the
// terminal status: the transaction's final Rc after retries, or Rc::kTimeout
// when the deadline expired before it could run. Runs on whichever thread
// completed the submission — a worker thread (possibly inside a fiber that
// has been preempted and resumed), or the scheduling thread for deadline
// expiry — so it must be fast, non-blocking, lock-free, and must not touch
// the engine. The networked front-end's callback appends the completion to
// a shard-local MPSC ring and issues at most one coalesced eventfd wake
// ("enqueue + maybe-wake") rather than taking locks or blocking.
using CompletionFn = std::function<void(Rc)>;

// Automatic re-execution of transactions that abort for transient reasons
// (write conflicts, serialization failures — see IsRetryableAbort). The
// default policy (max_attempts = 1) never retries; opting in re-runs the
// TxnFn up to max_attempts times total with capped exponential backoff plus
// deterministic jitter between attempts. Non-retryable outcomes (kNotFound,
// I/O errors, explicit aborts) return immediately regardless.
struct RetryPolicy {
  int max_attempts = 1;             // total attempts, including the first
  uint64_t initial_backoff_us = 20; // sleep before attempt 2
  uint64_t max_backoff_us = 2000;   // exponential growth cap
  uint64_t jitter_seed = 0;         // 0 = derive from the closure address
};

// Per-submission options.
struct SubmitOptions {
  RetryPolicy retry;
  // Relative deadline: the transaction must *finish* within timeout_us of
  // submission or it completes as Rc::kTimeout. Expiry is checked before
  // placement (scheduler), at dequeue, and before execution — a transaction
  // that already started is never cut short. 0 = no deadline.
  uint64_t timeout_us = 0;
  // Identity of the submitting front-end shard, carried through
  // sched::Request::shard_id for per-shard attribution (traces, counters).
  // Purely observational: placement, priority, and backpressure are
  // independent of it. 0 for single-shard callers.
  uint32_t shard_id = 0;
  // Optional lifecycle timeline (obs/timeline.h). The caller owns the
  // struct and must keep it alive until the completion callback fires (the
  // net layer keeps it inside the PendingOp the callback retains). The DB
  // stamps enqueue/dispatch/done, the worker stamps first-run and the
  // preemption counters, and completed runs are folded into the
  // sched.stage.* histograms. Null = no per-request tracing (zero cost).
  obs::TxnTimeline* timeline = nullptr;
};

// Outcome of a Submit() call. Backpressure contract: kQueueFull means the
// bounded submission queue rejected the closure — nothing was enqueued, the
// TxnFn was not consumed-and-dropped silently, and the caller decides
// whether to back off and resubmit, shed load, or escalate. The DB never
// blocks a Submit() caller; only SubmitAndWait* block (and they apply
// backpressure by waiting for a free slot). kStopped means the DB is
// shutting down and no further submissions are accepted.
enum class SubmitResult : uint8_t { kAccepted, kQueueFull, kStopped };

const char* SubmitResultString(SubmitResult r);

class DB {
 public:
  struct Options {
    sched::SchedulerConfig scheduler;
    // Start the scheduling runtime; if false the DB is engine-only and
    // Submit* are unavailable (Execute still works).
    bool start_scheduler = true;
    // Background version-GC period; 0 disables (collect manually via
    // engine().CollectGarbage()).
    uint64_t gc_interval_ms = 50;
    // Capacity of each bounded submission queue (per priority). Small
    // capacities make Submit() return kQueueFull under load — used by tests
    // to exercise the backpressure path deterministically.
    size_t submit_queue_capacity = 1 << 12;
    // Durability directory. Non-empty makes the DB crash-durable: opening
    // recovers whatever a previous incarnation left there (checkpoint +
    // CRC-framed redo tail), then appends to <log_dir>/redo.log with group
    // fdatasync at commit boundaries. Empty (default) keeps the engine
    // memory-resident with simulated durability. Open() PDB_CHECK-fails if
    // the directory is unusable or its contents are unrecoverable — a
    // server must not silently run non-durable when asked to be durable.
    std::string log_dir;
    // Fuzzy-checkpoint period when log_dir is set; 0 disables periodic
    // checkpoints (one can still be forced via
    // engine().WriteCheckpointNow()).
    uint64_t checkpoint_interval_ms = 0;
  };

  static std::unique_ptr<DB> Open(const Options& options);
  ~DB();
  PDB_DISALLOW_COPY_AND_ASSIGN(DB);

  // --- Engine-level access (caller's thread) ---
  engine::Engine& engine() { return engine_; }
  // What recovery found when this DB opened (meaningful with log_dir set).
  const engine::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }
  engine::Table* CreateTable(const std::string& name) {
    return engine_.CreateTable(name);
  }
  engine::Table* GetTable(const std::string& name) const {
    return engine_.GetTable(name);
  }

  // Runs `fn` inline on the calling thread, re-running retryable aborts per
  // `retry` (default: no retries).
  Rc Execute(const TxnFn& fn, const RetryPolicy& retry = {});

  // --- Scheduled execution ---

  // Enqueues `fn` with the given priority. Never blocks; see SubmitResult
  // for the backpressure contract. Completion is recorded in metrics().
  SubmitResult Submit(sched::Priority priority, TxnFn fn,
                      const SubmitOptions& options = {});

  // Submit with asynchronous completion: if (and only if) the submission is
  // accepted, `on_complete` fires exactly once with the terminal status (see
  // CompletionFn). On kQueueFull/kStopped nothing was enqueued and
  // `on_complete` will never be called — the caller still owns the reaction.
  SubmitResult Submit(sched::Priority priority, TxnFn fn,
                      CompletionFn on_complete,
                      const SubmitOptions& options = {});

  // Submits and blocks until the transaction ran (or its deadline expired);
  // returns its status. Waits for a queue slot rather than rejecting.
  Rc SubmitAndWait(sched::Priority priority, TxnFn fn,
                   const SubmitOptions& options = {});

  // SubmitAndWait with a deadline: returns Rc::kTimeout if the transaction
  // did not finish within timeout_us (it will not run afterwards either —
  // expired work is shed, never executed).
  Rc SubmitAndWaitFor(sched::Priority priority, TxnFn fn, uint64_t timeout_us);

  // Blocks until all submissions made so far have been executed.
  void Drain();

  sched::Metrics& metrics();
  sched::Scheduler& scheduler();

 private:
  struct Closure;

  explicit DB(const Options& options);
  static Rc ExecuteThunk(const sched::Request& req, void* ctx, int worker_id);
  bool PopSubmission(sched::Priority priority, sched::Request* out);
  // Completes `c` without running it (deadline expiry): publishes `rc` to
  // any waiter, counts it as completed, and frees the closure.
  void CompleteWithoutRunning(Closure* c, Rc rc);
  // Runs `fn` with retry-on-transient-abort semantics; `deadline_ns` bounds
  // backoff sleeps (0 = unbounded).
  Rc RunWithRetry(const TxnFn& fn, const RetryPolicy& retry,
                  uint64_t jitter_base, uint64_t deadline_ns);

  engine::Engine engine_;
  engine::RecoveryStats recovery_stats_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<MpmcQueue<Closure*>> lp_submissions_;
  std::unique_ptr<MpmcQueue<Closure*>> hp_submissions_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace preemptdb

#endif  // PREEMPTDB_CORE_PREEMPTDB_H_
