file(REMOVE_RECURSE
  "CMakeFiles/fig01_latency_distribution.dir/fig01_latency_distribution.cc.o"
  "CMakeFiles/fig01_latency_distribution.dir/fig01_latency_distribution.cc.o.d"
  "fig01_latency_distribution"
  "fig01_latency_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_latency_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
