# Empty dependencies file for fig01_latency_distribution.
# This may be replaced when dependencies are built.
