file(REMOVE_RECURSE
  "CMakeFiles/micro_uintr_delivery.dir/micro_uintr_delivery.cc.o"
  "CMakeFiles/micro_uintr_delivery.dir/micro_uintr_delivery.cc.o.d"
  "micro_uintr_delivery"
  "micro_uintr_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_uintr_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
