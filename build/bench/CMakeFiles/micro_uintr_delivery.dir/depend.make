# Empty dependencies file for micro_uintr_delivery.
# This may be replaced when dependencies are built.
