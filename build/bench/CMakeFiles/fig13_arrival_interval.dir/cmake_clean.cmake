file(REMOVE_RECURSE
  "CMakeFiles/fig13_arrival_interval.dir/fig13_arrival_interval.cc.o"
  "CMakeFiles/fig13_arrival_interval.dir/fig13_arrival_interval.cc.o.d"
  "fig13_arrival_interval"
  "fig13_arrival_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_arrival_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
