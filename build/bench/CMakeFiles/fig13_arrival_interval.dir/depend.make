# Empty dependencies file for fig13_arrival_interval.
# This may be replaced when dependencies are built.
