file(REMOVE_RECURSE
  "CMakeFiles/ablation_ycsb_contention.dir/ablation_ycsb_contention.cc.o"
  "CMakeFiles/ablation_ycsb_contention.dir/ablation_ycsb_contention.cc.o.d"
  "ablation_ycsb_contention"
  "ablation_ycsb_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ycsb_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
