# Empty compiler generated dependencies file for ablation_ycsb_contention.
# This may be replaced when dependencies are built.
