file(REMOVE_RECURSE
  "CMakeFiles/ablation_preempt_modes.dir/ablation_preempt_modes.cc.o"
  "CMakeFiles/ablation_preempt_modes.dir/ablation_preempt_modes.cc.o.d"
  "ablation_preempt_modes"
  "ablation_preempt_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preempt_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
