# Empty compiler generated dependencies file for ablation_preempt_modes.
# This may be replaced when dependencies are built.
