file(REMOVE_RECURSE
  "CMakeFiles/fig10_tail_latency.dir/fig10_tail_latency.cc.o"
  "CMakeFiles/fig10_tail_latency.dir/fig10_tail_latency.cc.o.d"
  "fig10_tail_latency"
  "fig10_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
