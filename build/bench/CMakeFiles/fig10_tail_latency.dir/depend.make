# Empty dependencies file for fig10_tail_latency.
# This may be replaced when dependencies are built.
