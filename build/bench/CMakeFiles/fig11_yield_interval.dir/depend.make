# Empty dependencies file for fig11_yield_interval.
# This may be replaced when dependencies are built.
