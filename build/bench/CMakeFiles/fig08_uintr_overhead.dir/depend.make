# Empty dependencies file for fig08_uintr_overhead.
# This may be replaced when dependencies are built.
