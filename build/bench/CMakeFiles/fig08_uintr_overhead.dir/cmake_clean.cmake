file(REMOVE_RECURSE
  "CMakeFiles/fig08_uintr_overhead.dir/fig08_uintr_overhead.cc.o"
  "CMakeFiles/fig08_uintr_overhead.dir/fig08_uintr_overhead.cc.o.d"
  "fig08_uintr_overhead"
  "fig08_uintr_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_uintr_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
