# Empty compiler generated dependencies file for fig12_starvation.
# This may be replaced when dependencies are built.
