file(REMOVE_RECURSE
  "CMakeFiles/fig12_starvation.dir/fig12_starvation.cc.o"
  "CMakeFiles/fig12_starvation.dir/fig12_starvation.cc.o.d"
  "fig12_starvation"
  "fig12_starvation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
