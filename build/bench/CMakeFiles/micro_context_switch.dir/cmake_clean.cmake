file(REMOVE_RECURSE
  "CMakeFiles/micro_context_switch.dir/micro_context_switch.cc.o"
  "CMakeFiles/micro_context_switch.dir/micro_context_switch.cc.o.d"
  "micro_context_switch"
  "micro_context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
