# Empty compiler generated dependencies file for micro_context_switch.
# This may be replaced when dependencies are built.
