file(REMOVE_RECURSE
  "CMakeFiles/uintr_test.dir/uintr_test.cc.o"
  "CMakeFiles/uintr_test.dir/uintr_test.cc.o.d"
  "uintr_test"
  "uintr_test.pdb"
  "uintr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uintr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
