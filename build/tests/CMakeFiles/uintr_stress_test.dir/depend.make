# Empty dependencies file for uintr_stress_test.
# This may be replaced when dependencies are built.
