file(REMOVE_RECURSE
  "CMakeFiles/uintr_stress_test.dir/uintr_stress_test.cc.o"
  "CMakeFiles/uintr_stress_test.dir/uintr_stress_test.cc.o.d"
  "uintr_stress_test"
  "uintr_stress_test.pdb"
  "uintr_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uintr_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
