file(REMOVE_RECURSE
  "CMakeFiles/workload_detail_test.dir/workload_detail_test.cc.o"
  "CMakeFiles/workload_detail_test.dir/workload_detail_test.cc.o.d"
  "workload_detail_test"
  "workload_detail_test.pdb"
  "workload_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
