# Empty dependencies file for workload_detail_test.
# This may be replaced when dependencies are built.
