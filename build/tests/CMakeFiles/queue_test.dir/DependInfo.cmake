
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/queue_test.cc" "tests/CMakeFiles/queue_test.dir/queue_test.cc.o" "gcc" "tests/CMakeFiles/queue_test.dir/queue_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/preemptdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_cls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_uintr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
