# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/fiber_test[1]_include.cmake")
include("/root/repo/build/tests/uintr_test[1]_include.cmake")
include("/root/repo/build/tests/cls_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/mvcc_test[1]_include.cmake")
include("/root/repo/build/tests/engine_concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/tpcc_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/core_api_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/uintr_stress_test[1]_include.cmake")
include("/root/repo/build/tests/workload_detail_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/gc_test[1]_include.cmake")
include("/root/repo/build/tests/ycsb_test[1]_include.cmake")
