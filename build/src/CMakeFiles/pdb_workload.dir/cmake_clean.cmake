file(REMOVE_RECURSE
  "CMakeFiles/pdb_workload.dir/workload/tpcc.cc.o"
  "CMakeFiles/pdb_workload.dir/workload/tpcc.cc.o.d"
  "CMakeFiles/pdb_workload.dir/workload/tpcc_txns.cc.o"
  "CMakeFiles/pdb_workload.dir/workload/tpcc_txns.cc.o.d"
  "CMakeFiles/pdb_workload.dir/workload/tpch.cc.o"
  "CMakeFiles/pdb_workload.dir/workload/tpch.cc.o.d"
  "CMakeFiles/pdb_workload.dir/workload/ycsb.cc.o"
  "CMakeFiles/pdb_workload.dir/workload/ycsb.cc.o.d"
  "libpdb_workload.a"
  "libpdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
