# Empty dependencies file for pdb_workload.
# This may be replaced when dependencies are built.
