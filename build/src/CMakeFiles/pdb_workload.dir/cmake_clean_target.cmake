file(REMOVE_RECURSE
  "libpdb_workload.a"
)
