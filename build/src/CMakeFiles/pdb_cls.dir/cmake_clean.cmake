file(REMOVE_RECURSE
  "CMakeFiles/pdb_cls.dir/cls/context_local.cc.o"
  "CMakeFiles/pdb_cls.dir/cls/context_local.cc.o.d"
  "CMakeFiles/pdb_cls.dir/cls/guarded_new.cc.o"
  "CMakeFiles/pdb_cls.dir/cls/guarded_new.cc.o.d"
  "libpdb_cls.a"
  "libpdb_cls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_cls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
