# Empty dependencies file for pdb_cls.
# This may be replaced when dependencies are built.
