file(REMOVE_RECURSE
  "libpdb_cls.a"
)
