file(REMOVE_RECURSE
  "CMakeFiles/pdb_sched.dir/sched/scheduler.cc.o"
  "CMakeFiles/pdb_sched.dir/sched/scheduler.cc.o.d"
  "CMakeFiles/pdb_sched.dir/sched/worker.cc.o"
  "CMakeFiles/pdb_sched.dir/sched/worker.cc.o.d"
  "libpdb_sched.a"
  "libpdb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
