file(REMOVE_RECURSE
  "libpdb_sched.a"
)
