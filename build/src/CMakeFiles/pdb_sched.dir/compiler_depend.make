# Empty compiler generated dependencies file for pdb_sched.
# This may be replaced when dependencies are built.
