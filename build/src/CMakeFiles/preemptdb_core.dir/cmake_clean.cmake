file(REMOVE_RECURSE
  "CMakeFiles/preemptdb_core.dir/core/preemptdb.cc.o"
  "CMakeFiles/preemptdb_core.dir/core/preemptdb.cc.o.d"
  "libpreemptdb_core.a"
  "libpreemptdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preemptdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
