# Empty dependencies file for preemptdb_core.
# This may be replaced when dependencies are built.
