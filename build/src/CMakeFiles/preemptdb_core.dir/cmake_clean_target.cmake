file(REMOVE_RECURSE
  "libpreemptdb_core.a"
)
