file(REMOVE_RECURSE
  "libpdb_uintr.a"
)
