# Empty compiler generated dependencies file for pdb_uintr.
# This may be replaced when dependencies are built.
