file(REMOVE_RECURSE
  "CMakeFiles/pdb_uintr.dir/uintr/fiber.cc.o"
  "CMakeFiles/pdb_uintr.dir/uintr/fiber.cc.o.d"
  "CMakeFiles/pdb_uintr.dir/uintr/fiber_switch.S.o"
  "CMakeFiles/pdb_uintr.dir/uintr/uintr.cc.o"
  "CMakeFiles/pdb_uintr.dir/uintr/uintr.cc.o.d"
  "libpdb_uintr.a"
  "libpdb_uintr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/pdb_uintr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
