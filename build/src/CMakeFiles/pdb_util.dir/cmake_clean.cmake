file(REMOVE_RECURSE
  "CMakeFiles/pdb_util.dir/util/clock.cc.o"
  "CMakeFiles/pdb_util.dir/util/clock.cc.o.d"
  "CMakeFiles/pdb_util.dir/util/histogram.cc.o"
  "CMakeFiles/pdb_util.dir/util/histogram.cc.o.d"
  "libpdb_util.a"
  "libpdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
