
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/pdb_engine.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/pdb_engine.dir/engine/engine.cc.o.d"
  "/root/repo/src/engine/gc.cc" "src/CMakeFiles/pdb_engine.dir/engine/gc.cc.o" "gcc" "src/CMakeFiles/pdb_engine.dir/engine/gc.cc.o.d"
  "/root/repo/src/engine/log.cc" "src/CMakeFiles/pdb_engine.dir/engine/log.cc.o" "gcc" "src/CMakeFiles/pdb_engine.dir/engine/log.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/CMakeFiles/pdb_engine.dir/engine/table.cc.o" "gcc" "src/CMakeFiles/pdb_engine.dir/engine/table.cc.o.d"
  "/root/repo/src/engine/transaction.cc" "src/CMakeFiles/pdb_engine.dir/engine/transaction.cc.o" "gcc" "src/CMakeFiles/pdb_engine.dir/engine/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_cls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_uintr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
