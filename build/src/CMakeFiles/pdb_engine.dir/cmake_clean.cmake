file(REMOVE_RECURSE
  "CMakeFiles/pdb_engine.dir/engine/engine.cc.o"
  "CMakeFiles/pdb_engine.dir/engine/engine.cc.o.d"
  "CMakeFiles/pdb_engine.dir/engine/gc.cc.o"
  "CMakeFiles/pdb_engine.dir/engine/gc.cc.o.d"
  "CMakeFiles/pdb_engine.dir/engine/log.cc.o"
  "CMakeFiles/pdb_engine.dir/engine/log.cc.o.d"
  "CMakeFiles/pdb_engine.dir/engine/table.cc.o"
  "CMakeFiles/pdb_engine.dir/engine/table.cc.o.d"
  "CMakeFiles/pdb_engine.dir/engine/transaction.cc.o"
  "CMakeFiles/pdb_engine.dir/engine/transaction.cc.o.d"
  "libpdb_engine.a"
  "libpdb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
