file(REMOVE_RECURSE
  "libpdb_engine.a"
)
