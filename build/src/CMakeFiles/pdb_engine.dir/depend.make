# Empty dependencies file for pdb_engine.
# This may be replaced when dependencies are built.
