# Empty compiler generated dependencies file for pdb_index.
# This may be replaced when dependencies are built.
