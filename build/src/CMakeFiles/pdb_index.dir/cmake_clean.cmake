file(REMOVE_RECURSE
  "CMakeFiles/pdb_index.dir/index/btree.cc.o"
  "CMakeFiles/pdb_index.dir/index/btree.cc.o.d"
  "libpdb_index.a"
  "libpdb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
