file(REMOVE_RECURSE
  "libpdb_index.a"
)
