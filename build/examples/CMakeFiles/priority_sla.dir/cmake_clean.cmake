file(REMOVE_RECURSE
  "CMakeFiles/priority_sla.dir/priority_sla.cpp.o"
  "CMakeFiles/priority_sla.dir/priority_sla.cpp.o.d"
  "priority_sla"
  "priority_sla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
