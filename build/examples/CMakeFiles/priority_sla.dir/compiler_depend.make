# Empty compiler generated dependencies file for priority_sla.
# This may be replaced when dependencies are built.
