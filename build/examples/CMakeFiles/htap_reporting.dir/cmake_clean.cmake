file(REMOVE_RECURSE
  "CMakeFiles/htap_reporting.dir/htap_reporting.cpp.o"
  "CMakeFiles/htap_reporting.dir/htap_reporting.cpp.o.d"
  "htap_reporting"
  "htap_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htap_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
