# Empty dependencies file for htap_reporting.
# This may be replaced when dependencies are built.
