file(REMOVE_RECURSE
  "CMakeFiles/ycsb_analytics.dir/ycsb_analytics.cpp.o"
  "CMakeFiles/ycsb_analytics.dir/ycsb_analytics.cpp.o.d"
  "ycsb_analytics"
  "ycsb_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
