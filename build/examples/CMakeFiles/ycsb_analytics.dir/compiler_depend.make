# Empty compiler generated dependencies file for ycsb_analytics.
# This may be replaced when dependencies are built.
